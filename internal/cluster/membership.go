package cluster

import (
	"sort"
	"sync"
	"time"
)

// Membership defaults.
const (
	DefaultHeartbeat    = 500 * time.Millisecond
	DefaultSuspectAfter = 2 * time.Second
	DefaultDeadAfter    = 10 * time.Second
)

// State is a peer's health as seen by this node.
type State int

const (
	// StateAlive: heard from within SuspectAfter.
	StateAlive State = iota
	// StateSuspect: silent for longer than SuspectAfter but not yet DeadAfter.
	StateSuspect
	// StateDead: silent for longer than DeadAfter. Dead peers stay in the
	// member set (and therefore the ring) so placement does not churn on
	// failures; their keys are served by the surviving replicas.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "alive"
	}
}

// ParseState inverts State.String (unknown strings read as suspect, the
// conservative middle ground).
func ParseState(s string) State {
	switch s {
	case "alive":
		return StateAlive
	case "dead":
		return StateDead
	default:
		return StateSuspect
	}
}

// PeerInfo is one peer's externally visible record.
type PeerInfo struct {
	ID          string
	URL         string
	State       State
	Generation  uint64 // peer's catalog generation, from its last heartbeat
	Epoch       uint64 // peer's mutation epoch, from its last heartbeat
	CatalogHash string // peer's catalog content hash, from its last heartbeat
	LastSeen    time.Time
}

// peerEntry is the mutable record behind PeerInfo.
type peerEntry struct {
	id          string
	url         string
	generation  uint64
	epoch       uint64
	catalogHash string
	lastSeen    time.Time // zero until first contact
	everSeen    bool
}

// Membership tracks the peers this node knows about. State is derived from
// LastSeen against the injectable clock — the same seam resilience.Breaker
// uses — so suspect/dead transitions are exact in tests instead of racing
// wall time. Safe for concurrent use.
type Membership struct {
	mu           sync.Mutex
	selfID       string
	peers        map[string]*peerEntry
	clock        func() time.Time
	suspectAfter time.Duration
	deadAfter    time.Duration
	version      uint64 // bumps when the member set changes (ring rebuild cue)
	birth        time.Time
}

// NewMembership builds an empty membership table for selfID. Zero durations
// take the defaults; a nil clock uses time.Now.
func NewMembership(selfID string, suspectAfter, deadAfter time.Duration, clock func() time.Time) *Membership {
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	if deadAfter <= suspectAfter {
		deadAfter = DefaultDeadAfter
		if deadAfter <= suspectAfter {
			deadAfter = 5 * suspectAfter
		}
	}
	if clock == nil {
		clock = time.Now
	}
	m := &Membership{
		selfID:       selfID,
		peers:        map[string]*peerEntry{},
		clock:        clock,
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		version:      1,
		birth:        clock(),
	}
	return m
}

// Upsert records a peer ID → URL mapping (discovery via seeds or gossip).
// It reports whether the member set changed. Self is never added. A peer
// that moved URLs (a restart on a new port) is updated in place.
func (m *Membership) Upsert(id, url string) bool {
	if id == "" || id == m.selfID {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		m.peers[id] = &peerEntry{id: id, url: url}
		m.version++
		return true
	}
	if url != "" && p.url != url {
		p.url = url
	}
	return false
}

// ObserveAlive marks a peer heard-from now, recording the catalog state its
// heartbeat carried. Unknown IDs are ignored (Upsert first).
func (m *Membership) ObserveAlive(id string, generation, epoch uint64, catalogHash string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return
	}
	p.lastSeen = m.clock()
	p.everSeen = true
	p.generation = generation
	p.epoch = epoch
	p.catalogHash = catalogHash
}

// stateOf derives a peer's state from its silence. A never-heard peer ages
// from the membership's birth, so a seed that is down from the start still
// progresses alive → suspect → dead.
func (m *Membership) stateOf(p *peerEntry, now time.Time) State {
	since := p.lastSeen
	if !p.everSeen {
		since = m.birth
	}
	switch age := now.Sub(since); {
	case age > m.deadAfter:
		return StateDead
	case age > m.suspectAfter:
		return StateSuspect
	default:
		return StateAlive
	}
}

// Peers lists all known peers (excluding self) sorted by ID, with states
// derived at call time.
func (m *Membership) Peers() []PeerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clock()
	out := make([]PeerInfo, 0, len(m.peers))
	for _, p := range m.peers {
		out = append(out, PeerInfo{
			ID:          p.id,
			URL:         p.url,
			State:       m.stateOf(p, now),
			Generation:  p.generation,
			Epoch:       p.epoch,
			CatalogHash: p.catalogHash,
			LastSeen:    p.lastSeen,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Peer returns one peer's record.
func (m *Membership) Peer(id string) (PeerInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return PeerInfo{}, false
	}
	return PeerInfo{
		ID:          p.id,
		URL:         p.url,
		State:       m.stateOf(p, m.clock()),
		Generation:  p.generation,
		Epoch:       p.epoch,
		CatalogHash: p.catalogHash,
		LastSeen:    p.lastSeen,
	}, true
}

// MemberIDs lists every member ID including self — the ring's input. Dead
// peers are included deliberately: placement must not churn when a node
// flaps, only when the operator changes the configured set.
func (m *Membership) MemberIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers)+1)
	out = append(out, m.selfID)
	for id := range m.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Version reports the member-set version; it bumps only when a member is
// added, so callers can rebuild derived state (the ring) exactly when needed.
func (m *Membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}
