package cluster

// Shared pooled HTTP transport for intra-cluster traffic.
//
// Every cluster wire path — estimate proxying, replication fan-out, hinted
// handoff, gossip, and anti-entropy pulls — is node-to-node traffic against
// a small, stable peer set. http.DefaultTransport (and worse, a fresh
// zero-Transport client per node) re-dials per burst and caps idle
// connections per host at 2, so a replication fan-out under load pays TCP
// handshakes on the hot path. One tuned transport with deep per-host idle
// pools turns that into connection reuse: the steady-state cost of a
// forwarded estimate is a write and a read on a kept-alive connection.

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// DefaultMaxIdleConnsPerHost is the per-peer idle connection pool depth when
// Config (or the serve flag) leaves it zero. Cluster fan-out is bursty —
// one mutation touches every peer at once — so the pool must hold a burst's
// worth of connections per peer, not net/http's default of 2.
const DefaultMaxIdleConnsPerHost = 32

// NewTransport builds a tuned transport for intra-cluster traffic:
// keep-alives on, per-host idle pools sized for replication bursts, and
// dial/TLS timeouts far below the per-request timeouts so a dead peer fails
// fast instead of consuming the whole request budget.
func NewTransport(maxIdlePerHost int) *http.Transport {
	if maxIdlePerHost <= 0 {
		maxIdlePerHost = DefaultMaxIdleConnsPerHost
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   2 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   maxIdlePerHost,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   2 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
	}
}

var (
	sharedOnce      sync.Once
	sharedTransport *http.Transport
)

// SharedTransport returns the process-wide pooled cluster transport, built
// on first use with default tuning. The node's gossip/snapshot client and
// the service's proxy/replication client both default to it, so every
// cluster path in one process shares one connection pool per peer.
func SharedTransport() *http.Transport {
	sharedOnce.Do(func() { sharedTransport = NewTransport(0) })
	return sharedTransport
}
