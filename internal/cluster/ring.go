// Package cluster turns independent estimation-service nodes into a
// coordinator-free cluster. It provides the three node-side building blocks
// the service layer composes:
//
//   - Ring: a consistent-hash ring with virtual nodes mapping index keys
//     ("table.column") to deterministic R-way replica sets. Placement depends
//     only on the member ID set and the vnode count, so every node and every
//     cluster-aware client computes identical ownership without talking to a
//     coordinator, and adding or removing one member moves only the expected
//     ~1/N fraction of keys.
//
//   - Membership: the known peers with alive/suspect/dead state driven by an
//     injectable clock (the same testing seam the resilience breaker uses),
//     fed by a lightweight HTTP heartbeat/gossip exchange that also carries
//     each node's catalog generation, content hash, and mutation epoch.
//
//   - Node: the per-process agent tying the two together: it gossips with
//     peers on a fixed heartbeat, rebuilds the ring when the member set
//     changes, exports per-peer health metrics, and converges diverged
//     catalogs by streaming the checksummed snapshot from the most advanced
//     peer (a Lamport mutation epoch decides direction; the import recompiles
//     estimators through the catalog's usual core.Compile ingress path).
//
// The serving-path integration (ownership checks, request forwarding, 421
// misdirected responses, replication fan-out) lives in internal/service; the
// cluster-aware client lives next to the plain retrying client there too.
// This package deliberately has no dependency on the service layer.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// Ring defaults.
const (
	DefaultVNodes   = 64
	DefaultReplicas = 2

	// MaxReplicas bounds R so ownership checks can use fixed-size scratch
	// space on the serving hot path.
	MaxReplicas = 8
)

// ringPoint is one virtual node on the ring: a hash position owned by a
// member (by index into Ring.members).
type ringPoint struct {
	hash   uint64
	member int32
}

// Ring is an immutable consistent-hash ring. Build with BuildRing; all
// methods are safe for concurrent use (the ring never mutates, so swapping
// rings is one atomic pointer store for the caller).
type Ring struct {
	vnodes  int
	members []string // sorted, deduped
	points  []ringPoint
}

// BuildRing constructs a ring over the given member IDs with vnodes virtual
// nodes per member (0 = DefaultVNodes). Members are deduped and sorted, so
// any permutation of the same set yields an identical ring. An empty member
// set yields a ring whose lookups return nothing.
func BuildRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	deduped := sorted[:0]
	for i, m := range sorted {
		if i == 0 || m != sorted[i-1] {
			deduped = append(deduped, m)
		}
	}
	r := &Ring{
		vnodes:  vnodes,
		members: deduped,
		points:  make([]ringPoint, 0, len(deduped)*vnodes),
	}
	var buf []byte
	for mi, m := range r.members {
		for v := 0; v < vnodes; v++ {
			buf = append(buf[:0], m...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(v), 10)
			r.points = append(r.points, ringPoint{hash: fnv64a(buf), member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on member index so placement
		// stays deterministic across processes.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// fnv64a is the 64-bit FNV-1a hash run through a murmur-style finalizer —
// dependency-free and stable across platforms and releases, which the golden
// placement test pins. The finalizer matters: ring order sorts on the full
// uint64, and raw FNV-1a leaves the high bits poorly mixed for short keys
// ("orders.o_custkey"-sized), which clusters placements badly.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return mix64(h)
}

// fnv64aString is fnv64a over a string without copying.
func fnv64aString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the MurmurHash3 64-bit finalizer: full avalanche, so every input
// bit flips every output bit with probability ~1/2.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Members lists the ring's member IDs in sorted order (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Len reports the number of members.
func (r *Ring) Len() int { return len(r.members) }

// VNodes reports the virtual nodes per member.
func (r *Ring) VNodes() int { return r.vnodes }

// start returns the index of the first ring point at or after the key's hash
// (wrapping to 0 past the end).
func (r *Ring) start(key string) int {
	h := fnv64aString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// ownersInto walks the ring clockwise from the key's position, collecting up
// to n distinct member indices into dst (len(dst) >= n). It returns the
// number collected. Allocation-free: the scratch is caller-owned.
func (r *Ring) ownersInto(key string, n int, dst []int32) int {
	if len(r.points) == 0 || n <= 0 {
		return 0
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	found := 0
	start := r.start(key)
	for i := 0; i < len(r.points) && found < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		dup := false
		for j := 0; j < found; j++ {
			if dst[j] == m {
				dup = true
				break
			}
		}
		if !dup {
			dst[found] = m
			found++
		}
	}
	return found
}

// Owners returns the ordered replica set for key: the n distinct members
// encountered walking clockwise from the key's ring position. The first
// entry is the primary owner.
func (r *Ring) Owners(key string, n int) []string {
	if n > MaxReplicas {
		n = MaxReplicas
	}
	var scratch [MaxReplicas]int32
	found := r.ownersInto(key, n, scratch[:])
	out := make([]string, found)
	for i := 0; i < found; i++ {
		out[i] = r.members[scratch[i]]
	}
	return out
}

// Primary returns the key's primary owner ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	var scratch [1]int32
	if r.ownersInto(key, 1, scratch[:]) == 0 {
		return ""
	}
	return r.members[scratch[0]]
}

// Owns reports whether member is in the key's n-way replica set. It is
// allocation-free — the form the serving hot path uses for ownership checks.
func (r *Ring) Owns(member, key string, n int) bool {
	if n > MaxReplicas {
		n = MaxReplicas
	}
	var scratch [MaxReplicas]int32
	found := r.ownersInto(key, n, scratch[:])
	for i := 0; i < found; i++ {
		if r.members[scratch[i]] == member {
			return true
		}
	}
	return false
}

// String summarizes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d vnodes)", len(r.members), r.vnodes)
}
