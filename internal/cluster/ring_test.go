package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// testKeys generates n distinct index-style keys.
func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("table%d.col%d", i%97, i)
	}
	return out
}

// TestRingGoldenPlacement pins the placement function. These owner sets must
// never change across releases: every node and every client computes
// placement independently, so a silent hash or walk change would split the
// cluster's notion of ownership.
func TestRingGoldenPlacement(t *testing.T) {
	r := BuildRing([]string{"node-a", "node-b", "node-c"}, 64)
	golden := []struct {
		key    string
		owners []string
	}{
		{"orders.o_custkey", []string{"node-c", "node-b"}},
		{"orders.o_orderdate", []string{"node-b", "node-c"}},
		{"lineitem.l_partkey", []string{"node-a", "node-b"}},
		{"lineitem.l_shipdate", []string{"node-b", "node-c"}},
		{"customer.c_nationkey", []string{"node-c", "node-b"}},
		{"part.p_size", []string{"node-c", "node-a"}},
		{"supplier.s_suppkey", []string{"node-c", "node-b"}},
		{"nation.n_regionkey", []string{"node-b", "node-a"}},
	}
	for _, g := range golden {
		if got := r.Owners(g.key, 2); !reflect.DeepEqual(got, g.owners) {
			t.Errorf("Owners(%q) = %v, want %v", g.key, got, g.owners)
		}
		if got := r.Primary(g.key); got != g.owners[0] {
			t.Errorf("Primary(%q) = %q, want %q", g.key, got, g.owners[0])
		}
		for _, m := range r.Members() {
			want := m == g.owners[0] || m == g.owners[1]
			if got := r.Owns(m, g.key, 2); got != want {
				t.Errorf("Owns(%s, %q) = %v, want %v", m, g.key, got, want)
			}
		}
	}
}

// TestRingDeterministicAcrossPermutations: any permutation (and duplication)
// of the same member set builds an identical ring.
func TestRingDeterministicAcrossPermutations(t *testing.T) {
	base := []string{"n1", "n2", "n3", "n4", "n5"}
	ref := BuildRing(base, 64)
	keys := testKeys(500)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		perm := append([]string(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		perm = append(perm, perm[rng.Intn(len(perm))]) // duplicates are deduped
		r := BuildRing(perm, 64)
		for _, k := range keys {
			if got, want := r.Owners(k, 3), ref.Owners(k, 3); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: Owners(%q) = %v, want %v", trial, k, got, want)
			}
		}
	}
}

// TestRingReplicaSetShape: owner sets are distinct members, capped by the
// member count, primary-first consistent with Primary.
func TestRingReplicaSetShape(t *testing.T) {
	r := BuildRing([]string{"a", "b", "c"}, 32)
	for _, k := range testKeys(200) {
		owners := r.Owners(k, 5) // n > members: capped at 3
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 5) has %d entries, want 3", k, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q", k, o)
			}
			seen[o] = true
		}
		if owners[0] != r.Primary(k) {
			t.Fatalf("Owners(%q)[0] = %q != Primary %q", k, owners[0], r.Primary(k))
		}
	}
	empty := BuildRing(nil, 16)
	if got := empty.Owners("x.y", 2); len(got) != 0 {
		t.Errorf("empty ring Owners = %v", got)
	}
	if got := empty.Primary("x.y"); got != "" {
		t.Errorf("empty ring Primary = %q", got)
	}
}

// TestRingRemovalMovesOnlyOwnedKeys checks the exact stability invariant:
// removing member m changes the owner set only for keys m owned.
func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	const R = 2
	before := BuildRing(members, 64)
	keys := testKeys(2000)
	for _, removed := range members {
		var rest []string
		for _, m := range members {
			if m != removed {
				rest = append(rest, m)
			}
		}
		after := BuildRing(rest, 64)
		for _, k := range keys {
			ob, oa := before.Owners(k, R), after.Owners(k, R)
			if !before.Owns(removed, k, R) {
				if !reflect.DeepEqual(ob, oa) {
					t.Fatalf("removing %s moved un-owned key %q: %v -> %v", removed, k, ob, oa)
				}
				continue
			}
			// A key the removed member owned keeps its surviving owners (in
			// order) and gains exactly one replacement.
			var survivors []string
			for _, o := range ob {
				if o != removed {
					survivors = append(survivors, o)
				}
			}
			for i, s := range survivors {
				if oa[i] != s {
					t.Fatalf("removing %s reordered survivors for %q: %v -> %v", removed, k, ob, oa)
				}
			}
		}
	}
}

// TestRingAdditionMovesBoundedFraction checks both the exact invariant
// (adding X changes a key's owner set only by inserting X) and the
// statistical rebalance bound: the moved-key fraction stays near R/(N+1).
func TestRingAdditionMovesBoundedFraction(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	const R = 2
	before := BuildRing(members, 64)
	after := BuildRing(append([]string{"n6"}, members...), 64)
	keys := testKeys(20000)
	moved := 0
	for _, k := range keys {
		ob, oa := before.Owners(k, R), after.Owners(k, R)
		if reflect.DeepEqual(ob, oa) {
			continue
		}
		moved++
		// The only permitted change is n6 entering the set: the old owners
		// minus at most one displaced member, order preserved.
		if !after.Owns("n6", k, R) {
			t.Fatalf("key %q moved (%v -> %v) without n6 owning it", k, ob, oa)
		}
		j := 0
		for _, o := range oa {
			if o == "n6" {
				continue
			}
			for j < len(ob) && ob[j] != o {
				j++
			}
			if j == len(ob) {
				t.Fatalf("key %q gained non-new owner: %v -> %v", k, ob, oa)
			}
			j++
		}
	}
	// Expected moved fraction ≈ R/(N+1) = 2/6 ≈ 33%; allow generous slack
	// for vnode variance but fail on gross misbehaviour (e.g. rehashing
	// everything would move ~100%).
	frac := float64(moved) / float64(len(keys))
	if frac > 0.55 {
		t.Errorf("adding one node moved %.1f%% of keys, want ≈%.1f%%",
			frac*100, 100*float64(R)/float64(len(members)+1))
	}
	if frac == 0 {
		t.Error("adding a node moved no keys at all")
	}
}

// TestRingConcurrentLookups hammers one ring from many goroutines while
// other rings are built concurrently — the immutability contract under
// -race.
func TestRingConcurrentLookups(t *testing.T) {
	r := BuildRing([]string{"a", "b", "c", "d"}, 64)
	keys := testKeys(64)
	want := make([][]string, len(keys))
	for i, k := range keys {
		want[i] = r.Owners(k, 3)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := (g + iter) % len(keys)
				if got := r.Owners(keys[i], 3); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("concurrent Owners(%q) = %v, want %v", keys[i], got, want[i])
					return
				}
				if !r.Owns(want[i][0], keys[i], 3) {
					t.Errorf("concurrent Owns(%q) lost primary", keys[i])
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				BuildRing([]string{"x", "y", "z", fmt.Sprintf("w%d-%d", g, iter)}, 32)
			}
		}(g)
	}
	wg.Wait()
}

// TestRingBalance: with 64 vnodes no member's primary share should be wildly
// off 1/N.
func TestRingBalance(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	r := BuildRing(members, 64)
	counts := map[string]int{}
	keys := testKeys(20000)
	for _, k := range keys {
		counts[r.Primary(k)]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / float64(len(keys))
		if frac < 0.08 || frac > 0.40 {
			t.Errorf("member %s primary share %.1f%%, want ≈20%%", m, frac*100)
		}
	}
}
