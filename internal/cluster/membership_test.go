package cluster

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeClock is the injectable-clock seam shared with resilience tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestMembershipUpsertAndVersion(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership("self", time.Second, 5*time.Second, clk.Now)
	v0 := m.Version()

	if m.Upsert("self", "http://self") {
		t.Error("Upsert(self) should be a no-op")
	}
	if m.Upsert("", "http://anon") {
		t.Error("Upsert(empty id) should be a no-op")
	}
	if !m.Upsert("p1", "http://p1") {
		t.Error("first Upsert(p1) should report a member-set change")
	}
	if m.Upsert("p1", "http://p1") {
		t.Error("repeat Upsert(p1) should not report a change")
	}
	if m.Version() != v0+1 {
		t.Errorf("Version = %d, want %d", m.Version(), v0+1)
	}

	// URL moves update in place without a version bump.
	m.Upsert("p1", "http://p1-restarted")
	if p, _ := m.Peer("p1"); p.URL != "http://p1-restarted" {
		t.Errorf("URL after move = %q", p.URL)
	}
	if m.Version() != v0+1 {
		t.Error("URL move must not bump the member-set version")
	}

	m.Upsert("p2", "http://p2")
	want := []string{"p1", "p2", "self"}
	if got := m.MemberIDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("MemberIDs = %v, want %v", got, want)
	}
}

func TestMembershipStateTransitions(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership("self", 2*time.Second, 10*time.Second, clk.Now)
	m.Upsert("p1", "http://p1")
	m.ObserveAlive("p1", 3, 7, "crc32c:deadbeef")

	get := func() PeerInfo {
		p, ok := m.Peer("p1")
		if !ok {
			t.Fatal("peer p1 vanished")
		}
		return p
	}

	if p := get(); p.State != StateAlive {
		t.Fatalf("fresh peer state = %v, want alive", p.State)
	}
	if p := get(); p.Generation != 3 || p.Epoch != 7 || p.CatalogHash != "crc32c:deadbeef" {
		t.Errorf("heartbeat payload not recorded: %+v", p)
	}

	clk.Advance(2500 * time.Millisecond) // past suspectAfter
	if p := get(); p.State != StateSuspect {
		t.Fatalf("state after 2.5s silence = %v, want suspect", p.State)
	}

	clk.Advance(8 * time.Second) // 10.5s total: past deadAfter
	if p := get(); p.State != StateDead {
		t.Fatalf("state after 10.5s silence = %v, want dead", p.State)
	}

	// Dead peers stay in the member set — the ring must not churn on flaps.
	if got := m.MemberIDs(); !reflect.DeepEqual(got, []string{"p1", "self"}) {
		t.Errorf("dead peer evicted from MemberIDs: %v", got)
	}

	// A heartbeat resurrects it.
	m.ObserveAlive("p1", 4, 8, "crc32c:beefdead")
	if p := get(); p.State != StateAlive {
		t.Fatalf("state after resurrection = %v, want alive", p.State)
	}
}

func TestMembershipNeverSeenPeerAgesFromBirth(t *testing.T) {
	clk := newFakeClock()
	m := NewMembership("self", 2*time.Second, 10*time.Second, clk.Now)
	m.Upsert("seed-down", "http://down")

	if p, _ := m.Peer("seed-down"); p.State != StateAlive {
		t.Fatalf("grace state = %v, want alive", p.State)
	}
	clk.Advance(3 * time.Second)
	if p, _ := m.Peer("seed-down"); p.State != StateSuspect {
		t.Fatalf("never-seen peer after 3s = %v, want suspect", p.State)
	}
	clk.Advance(8 * time.Second)
	if p, _ := m.Peer("seed-down"); p.State != StateDead {
		t.Fatalf("never-seen peer after 11s = %v, want dead", p.State)
	}
}

func TestMembershipObserveUnknownIgnored(t *testing.T) {
	m := NewMembership("self", 0, 0, nil)
	m.ObserveAlive("ghost", 1, 1, "h") // must not panic or add a member
	if len(m.Peers()) != 0 {
		t.Errorf("ObserveAlive on unknown id added a peer: %v", m.Peers())
	}
}

func TestStateStringRoundTrip(t *testing.T) {
	for _, s := range []State{StateAlive, StateSuspect, StateDead} {
		if got := ParseState(s.String()); got != s {
			t.Errorf("ParseState(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if got := ParseState("weird"); got != StateSuspect {
		t.Errorf("ParseState(unknown) = %v, want suspect", got)
	}
}

func TestMembershipPeersSorted(t *testing.T) {
	m := NewMembership("self", 0, 0, nil)
	for _, id := range []string{"zeta", "alpha", "mid"} {
		m.Upsert(id, "http://"+id)
	}
	peers := m.Peers()
	var ids []string
	for _, p := range peers {
		ids = append(ids, p.ID)
	}
	if !reflect.DeepEqual(ids, []string{"alpha", "mid", "zeta"}) {
		t.Errorf("Peers order = %v", ids)
	}
}
