package table

import (
	"math/rand"
	"testing"
	"testing/quick"

	"epfis/internal/btree"
	"epfis/internal/buffer"
	"epfis/internal/storage"
)

func TestCollectRIDs(t *testing.T) {
	tb := buildSeq(t, 100, 10)
	ix, _ := tb.Index("k")
	rids, err := ix.CollectRIDs(btree.Ge(10), btree.Lt(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 20 {
		t.Fatalf("%d rids", len(rids))
	}
}

func TestSortRIDs(t *testing.T) {
	rids := []storage.RID{{Page: 3, Slot: 1}, {Page: 1, Slot: 9}, {Page: 3, Slot: 0}, {Page: 0, Slot: 5}}
	SortRIDs(rids)
	for i := 1; i < len(rids); i++ {
		if rids[i].Less(rids[i-1]) {
			t.Fatalf("not sorted at %d: %v", i, rids)
		}
	}
}

func TestUnionIntersectRIDs(t *testing.T) {
	a := []storage.RID{{Page: 1, Slot: 0}, {Page: 2, Slot: 0}, {Page: 3, Slot: 0}}
	b := []storage.RID{{Page: 2, Slot: 0}, {Page: 4, Slot: 0}}
	u := UnionRIDs(a, b)
	if len(u) != 4 {
		t.Errorf("union = %v", u)
	}
	i := IntersectRIDs(a, b)
	if len(i) != 1 || i[0] != (storage.RID{Page: 2, Slot: 0}) {
		t.Errorf("intersect = %v", i)
	}
	if got := UnionRIDs(nil, nil); len(got) != 0 {
		t.Errorf("empty union = %v", got)
	}
	if got := IntersectRIDs(a, nil); len(got) != 0 {
		t.Errorf("empty intersect = %v", got)
	}
}

// Property: union/intersect agree with map-based reference sets.
func TestRIDSetAlgebraProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) []storage.RID {
			rids := make([]storage.RID, n)
			for i := range rids {
				rids[i] = storage.RID{Page: storage.PageID(rng.Intn(10)), Slot: uint16(rng.Intn(4))}
			}
			return rids
		}
		a, b := mk(rng.Intn(50)), mk(rng.Intn(50))
		set := func(rids []storage.RID) map[storage.RID]bool {
			m := map[storage.RID]bool{}
			for _, r := range rids {
				m[r] = true
			}
			return m
		}
		sa, sb := set(a), set(b)
		u := UnionRIDs(a, b)
		su := set(u)
		if len(u) != len(su) {
			return false // duplicates survived
		}
		for r := range sa {
			if !su[r] {
				return false
			}
		}
		for r := range sb {
			if !su[r] {
				return false
			}
		}
		if len(su) != len(sa)+len(sb)-lenIntersect(sa, sb) {
			return false
		}
		in := IntersectRIDs(a, b)
		for _, r := range in {
			if !sa[r] || !sb[r] {
				return false
			}
		}
		return len(in) == lenIntersect(sa, sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func lenIntersect(a, b map[storage.RID]bool) int {
	n := 0
	for r := range a {
		if b[r] {
			n++
		}
	}
	return n
}

func TestRIDListScanFetchesEachPageOnce(t *testing.T) {
	// Worst-case unclustered table: a plain index scan with B=2 fetches one
	// page per record; the RID-list scan fetches each distinct page once,
	// regardless of buffer size.
	const pages = 10
	tb := buildMod(t, 100, pages, 10)
	pool, err := buffer.NewLRU(tb.Store, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := tb.ScanThroughPool(pool, "k", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PageFetches != 100 {
		t.Fatalf("plain scan fetches = %d, want 100", plain.PageFetches)
	}
	ridlist, err := tb.RIDListScanThroughPool(pool, "k", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ridlist.PageFetches != pages {
		t.Errorf("RID-list scan fetches = %d, want %d", ridlist.PageFetches, pages)
	}
	if ridlist.Records != 100 || ridlist.KeySum != plain.KeySum {
		t.Errorf("RID-list scan records=%d keysum=%d, want 100/%d", ridlist.Records, ridlist.KeySum, plain.KeySum)
	}
}

func TestRIDListScanPartialRange(t *testing.T) {
	tb := buildSeq(t, 200, 20)
	pool, err := buffer.NewLRU(tb.Store, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.RIDListScanThroughPool(pool, "k", btree.Ge(40), btree.Lt(120))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 80 {
		t.Errorf("records = %d", res.Records)
	}
	if res.PageFetches != int64(res.PagesAccessed) {
		t.Errorf("fetches %d != pages accessed %d", res.PageFetches, res.PagesAccessed)
	}
}

func TestFetchRIDListAfterANDing(t *testing.T) {
	// Index ANDing on one index: two overlapping ranges, intersect, fetch.
	tb := buildSeq(t, 100, 10)
	ix, _ := tb.Index("k")
	a, err := ix.CollectRIDs(btree.Ge(20), btree.Le(60))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.CollectRIDs(btree.Ge(50), btree.Le(90))
	if err != nil {
		t.Fatal(err)
	}
	both := IntersectRIDs(a, b)
	if len(both) != 11 { // keys 50..60
		t.Fatalf("intersection = %d rids", len(both))
	}
	pool, err := buffer.NewLRU(tb.Store, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.FetchRIDList(pool, both)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 11 {
		t.Errorf("records = %d", res.Records)
	}
	var wantSum int64
	for k := int64(50); k <= 60; k++ {
		wantSum += k
	}
	if res.KeySum != wantSum {
		t.Errorf("keysum = %d, want %d", res.KeySum, wantSum)
	}
}
