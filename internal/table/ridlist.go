package table

import (
	"fmt"
	"sort"

	"epfis/internal/btree"
	"epfis/internal/buffer"
	"epfis/internal/storage"
)

// This file implements the access-path family the paper explicitly set
// aside ("We are assuming that there is no RID-list sort, union, or
// intersection before the data records are fetched") and then listed as
// future work (§6: "use of RID-list operations, index ANDing and ORing").
//
// A RID-list scan collects the qualifying RIDs first, sorts them into
// physical page order, and only then fetches the data pages. The sorted
// fetch touches every page exactly once regardless of buffer size — turning
// the hard F(B) estimation problem into a distinct-page count — at the cost
// of materializing and sorting the RID list (and losing the index's key
// order).

// CollectRIDs gathers the RIDs of all qualifying entries in index order.
func (ix *Index) CollectRIDs(start, stop *btree.Bound) ([]storage.RID, error) {
	var rids []storage.RID
	err := ix.Tree.Scan(start, stop, func(e btree.Entry) error {
		rids = append(rids, e.RID)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("table: collect rids: %w", err)
	}
	return rids, nil
}

// SortRIDs orders a RID list into physical page order, in place.
func SortRIDs(rids []storage.RID) {
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
}

// UnionRIDs returns the sorted union of two RID lists (index ORing).
// Inputs need not be sorted; duplicates collapse.
func UnionRIDs(a, b []storage.RID) []storage.RID {
	out := make([]storage.RID, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	SortRIDs(out)
	dedup := out[:0]
	for i, r := range out {
		if i == 0 || r != out[i-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

// IntersectRIDs returns the sorted intersection of two RID lists (index
// ANDing). Inputs need not be sorted.
func IntersectRIDs(a, b []storage.RID) []storage.RID {
	as := append([]storage.RID(nil), a...)
	bs := append([]storage.RID(nil), b...)
	SortRIDs(as)
	SortRIDs(bs)
	var out []storage.RID
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		switch as[i].Compare(bs[j]) {
		case -1:
			i++
		case 1:
			j++
		default:
			if len(out) == 0 || out[len(out)-1] != as[i] {
				out = append(out, as[i])
			}
			i++
			j++
		}
	}
	return out
}

// FetchRIDList fetches every record in the list through the pool, in list
// order, decoding each record. Pass a page-sorted list for the
// one-fetch-per-page guarantee.
func (t *Table) FetchRIDList(pool buffer.Pool, rids []storage.RID) (ScanResult, error) {
	pool.Reset()
	seen := make(map[storage.PageID]struct{})
	var res ScanResult
	for _, rid := range rids {
		pg, err := pool.Get(rid.Page)
		if err != nil {
			return ScanResult{}, err
		}
		raw, err := pg.Record(rid.Slot)
		if err != nil {
			return ScanResult{}, fmt.Errorf("table: rid %v: %w", rid, err)
		}
		rec, err := storage.DecodeRecord(raw)
		if err != nil {
			return ScanResult{}, err
		}
		res.Records++
		res.KeySum += rec.Key
		seen[rid.Page] = struct{}{}
	}
	res.PagesAccessed = len(seen)
	res.PageFetches = pool.Stats().Fetches
	return res, nil
}

// RIDListScanThroughPool runs the full RID-list plan: collect qualifying
// RIDs for the range, sort them into page order, then fetch. The fetch
// count equals the number of distinct pages for any pool size >= 1.
func (t *Table) RIDListScanThroughPool(pool buffer.Pool, column string, start, stop *btree.Bound) (ScanResult, error) {
	ix, err := t.Index(column)
	if err != nil {
		return ScanResult{}, err
	}
	rids, err := ix.CollectRIDs(start, stop)
	if err != nil {
		return ScanResult{}, err
	}
	SortRIDs(rids)
	return t.FetchRIDList(pool, rids)
}
