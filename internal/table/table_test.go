package table

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"epfis/internal/btree"
	"epfis/internal/buffer"
	"epfis/internal/lrusim"
	"epfis/internal/storage"
)

// buildMod builds a table of n records with keys 0..n-1 placed round-robin
// over pages (key i on page i % pages): a maximally unclustered layout.
func buildMod(t testing.TB, n, pages, perPage int) *Table {
	t.Helper()
	b, err := NewBuilder("mod", pages, perPage)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Place("k", i%pages, int64(i)); err != nil {
			t.Fatalf("Place(%d): %v", i, err)
		}
	}
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// buildSeq builds a perfectly clustered table: keys in page order.
func buildSeq(t testing.TB, n, perPage int) *Table {
	t.Helper()
	pages := (n + perPage - 1) / perPage
	b, err := NewBuilder("seq", pages, perPage)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Place("k", i/perPage, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestBuilderBasics(t *testing.T) {
	tb := buildSeq(t, 100, 10)
	if tb.T() != 10 || tb.N() != 100 || tb.RecordsPerPage != 10 {
		t.Errorf("T=%d N=%d R=%d", tb.T(), tb.N(), tb.RecordsPerPage)
	}
	ix, err := tb.Index("k")
	if err != nil {
		t.Fatal(err)
	}
	if ix.DistinctKeys != 100 || ix.MinKey != 0 || ix.MaxKey != 99 {
		t.Errorf("I=%d min=%d max=%d", ix.DistinctKeys, ix.MinKey, ix.MaxKey)
	}
	if err := ix.Tree.Check(); err != nil {
		t.Fatalf("index Check: %v", err)
	}
	if _, err := tb.Index("nope"); !errors.Is(err, ErrNoSuchIndex) {
		t.Errorf("Index(nope) err = %v", err)
	}
}

func TestBuilderRejectsOutOfOrderKeys(t *testing.T) {
	b, err := NewBuilder("x", 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Place("k", 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.Place("k", 0, 3); err == nil {
		t.Error("out-of-order key accepted")
	}
	// Equal keys are fine (duplicates).
	if err := b.Place("k", 1, 5); err != nil {
		t.Errorf("duplicate key rejected: %v", err)
	}
}

func TestFullScanTraceClustered(t *testing.T) {
	tb := buildSeq(t, 60, 10)
	ix, _ := tb.Index("k")
	trace, err := ix.FullScanTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 60 {
		t.Fatalf("trace length = %d", len(trace))
	}
	// Clustered: page ids non-decreasing, 6 distinct pages.
	for i := 1; i < len(trace); i++ {
		if trace[i] < trace[i-1] {
			t.Fatalf("clustered trace decreases at %d: %d after %d", i, trace[i], trace[i-1])
		}
	}
	if got := trace.DistinctPages(); got != 6 {
		t.Errorf("DistinctPages = %d, want 6", got)
	}
}

func TestScanTracePartial(t *testing.T) {
	tb := buildSeq(t, 100, 10)
	ix, _ := tb.Index("k")
	trace, err := ix.ScanTrace(btree.Ge(20), btree.Lt(40))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 20 {
		t.Fatalf("partial trace length = %d, want 20", len(trace))
	}
	if got := trace.DistinctPages(); got != 2 {
		t.Errorf("partial DistinctPages = %d, want 2", got)
	}
}

func TestCountRange(t *testing.T) {
	tb := buildSeq(t, 100, 10)
	ix, _ := tb.Index("k")
	n, err := ix.CountRange(btree.Ge(10), btree.Le(19))
	if err != nil || n != 10 {
		t.Errorf("CountRange = %d, %v", n, err)
	}
	n, err = ix.CountRange(nil, nil)
	if err != nil || n != 100 {
		t.Errorf("CountRange(full) = %d, %v", n, err)
	}
}

func TestScanThroughPoolClusteredIndependentOfB(t *testing.T) {
	// Paper §2: clustered index scan has F == A for any B.
	tb := buildSeq(t, 200, 20)
	for _, size := range []int{1, 3, 10, 50} {
		pool, err := buffer.NewLRU(tb.Store, size)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tb.ScanThroughPool(pool, "k", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Records != 200 || res.PagesAccessed != 10 {
			t.Fatalf("records=%d accessed=%d", res.Records, res.PagesAccessed)
		}
		if res.PageFetches != 10 {
			t.Errorf("B=%d: fetches = %d, want 10 (clustered)", size, res.PageFetches)
		}
		wantSum := int64(199 * 200 / 2)
		if res.KeySum != wantSum {
			t.Errorf("KeySum = %d, want %d", res.KeySum, wantSum)
		}
	}
}

func TestScanThroughPoolUnclusteredDependsOnB(t *testing.T) {
	// Round-robin placement: keys 0..n-1 on page i%pages. A scan in key
	// order cycles through all pages repeatedly — the worst case for a
	// small buffer.
	const pages = 10
	tb := buildMod(t, 100, pages, 10)
	small, err := buffer.NewLRU(tb.Store, 2)
	if err != nil {
		t.Fatal(err)
	}
	resSmall, err := tb.ScanThroughPool(small, "k", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	big, err := buffer.NewLRU(tb.Store, pages)
	if err != nil {
		t.Fatal(err)
	}
	resBig, err := tb.ScanThroughPool(big, "k", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.PageFetches != 100 {
		t.Errorf("B=2 fetches = %d, want 100 (every ref misses)", resSmall.PageFetches)
	}
	if resBig.PageFetches != pages {
		t.Errorf("B=%d fetches = %d, want %d", pages, resBig.PageFetches, pages)
	}
}

func TestScanThroughPoolMatchesStackSimulation(t *testing.T) {
	// The real pooled scan and the stack simulation must agree exactly for
	// every buffer size: this welds the measurement path to the modeling
	// path.
	rng := rand.New(rand.NewSource(5))
	const n, pages, perPage = 400, 20, 20
	b, err := NewBuilder("rand", pages, perPage)
	if err != nil {
		t.Fatal(err)
	}
	fill := make([]int, pages)
	for i := 0; i < n; i++ {
		pg := rng.Intn(pages)
		for fill[pg] >= perPage {
			pg = (pg + 1) % pages
		}
		if err := b.Place("k", pg, int64(i/4)); err != nil { // 4 dups per key
			t.Fatal(err)
		}
		fill[pg]++
	}
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, _ := tb.Index("k")
	trace, err := ix.FullScanTrace()
	if err != nil {
		t.Fatal(err)
	}
	curve := lrusim.Analyze(trace)
	for _, size := range []int{1, 2, 5, 11, 20} {
		pool, err := buffer.NewLRU(tb.Store, size)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tb.ScanThroughPool(pool, "k", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.PageFetches, curve.Fetches(size); got != want {
			t.Errorf("B=%d: pooled scan fetched %d, stack curve says %d", size, got, want)
		}
	}
}

func TestPartialScanThroughPool(t *testing.T) {
	tb := buildSeq(t, 100, 10)
	pool, err := buffer.NewLRU(tb.Store, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.ScanThroughPool(pool, "k", btree.Ge(25), btree.Lt(75))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 50 {
		t.Errorf("Records = %d, want 50", res.Records)
	}
	if res.PagesAccessed != 6 { // pages 2..7
		t.Errorf("PagesAccessed = %d, want 6", res.PagesAccessed)
	}
	if res.PageFetches != 6 {
		t.Errorf("PageFetches = %d, want 6", res.PageFetches)
	}
}

func TestScanThroughPoolMissingIndex(t *testing.T) {
	tb := buildSeq(t, 10, 10)
	pool, err := buffer.NewLRU(tb.Store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.ScanThroughPool(pool, "nope", nil, nil); !errors.Is(err, ErrNoSuchIndex) {
		t.Errorf("err = %v", err)
	}
}

func TestScanThroughPoolFiltered(t *testing.T) {
	// A table with a minor column: filtered scans fetch only matching
	// entries' pages, and the count matches a simulation of the filtered
	// trace exactly.
	b, err := NewBuilder("f", 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		// key = i/10 (10 dups per key), b value = i % 4, scattered pages.
		if err := b.PlaceEntry("k", (i*7)%10, int64(i/10), uint32(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.NewLRU(tb.Store, 2)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(e btree.Entry) bool { return e.Included == 2 }
	res, err := tb.ScanThroughPoolFiltered(pool, "k", nil, nil, filter)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 25 {
		t.Errorf("filtered records = %d, want 25", res.Records)
	}
	// Cross-check against the filtered trace through the stack simulator.
	ix, _ := tb.Index("k")
	var filtered lrusim.Trace
	err = ix.Tree.Scan(nil, nil, func(e btree.Entry) error {
		if filter(e) {
			filtered = append(filtered, e.RID.Page)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := lrusim.Analyze(filtered).Fetches(2)
	if res.PageFetches != want {
		t.Errorf("filtered fetches = %d, stack sim says %d", res.PageFetches, want)
	}
	// Unfiltered scan fetches at least as much.
	full, err := tb.ScanThroughPool(pool, "k", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.PageFetches < res.PageFetches {
		t.Error("filtered scan fetched more than full scan")
	}
}

func TestFileBackedTableEndToEnd(t *testing.T) {
	// The full pipeline on a disk-backed store: build, index, scan through a
	// pool, and verify the fetch count matches the in-memory build exactly.
	fs, err := storage.OpenFileStore(filepath.Join(t.TempDir(), "table.db"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	build := func(b *Builder) *Table {
		t.Helper()
		for i := 0; i < 400; i++ {
			if err := b.Place("k", (i*13)%20, int64(i/4)); err != nil {
				t.Fatal(err)
			}
		}
		tb, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	onDisk, err := NewBuilderOn(fs, "disk", 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	diskTable := build(onDisk)
	inMem, err := NewBuilder("mem", 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	memTable := build(inMem)

	for _, size := range []int{2, 8, 20} {
		dp, err := buffer.NewLRU(diskTable.Store, size)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := buffer.NewLRU(memTable.Store, size)
		if err != nil {
			t.Fatal(err)
		}
		dres, err := diskTable.ScanThroughPool(dp, "k", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		mres, err := memTable.ScanThroughPool(mp, "k", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dres != mres {
			t.Errorf("B=%d: disk %+v vs mem %+v", size, dres, mres)
		}
	}
	ix, err := diskTable.Index("k")
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Tree.Check(); err != nil {
		t.Fatalf("disk-backed index Check: %v", err)
	}
}
