// Package table binds the storage substrates together: a Table is a heap
// file of data pages plus one or more B-tree indexes over its key columns.
//
// The central operation for this system is producing the data-page reference
// trace of an index scan — the sequence of page ids touched when the scan's
// qualifying records are fetched in index-key order. That trace drives:
//
//   - LRU-Fit's one-pass buffer modeling (internal/lrusim),
//   - the baselines' statistics passes (internal/baselines), and
//   - the measurement of "actual" page fetches against which every estimator
//     is scored (either via the stack simulator or a real buffer pool).
package table

import (
	"errors"
	"fmt"

	"epfis/internal/btree"
	"epfis/internal/buffer"
	"epfis/internal/lrusim"
	"epfis/internal/storage"
)

// Table is a heap file with an index per indexed column.
type Table struct {
	// Name identifies the table in catalogs and reports.
	Name string
	// Store holds both data and index pages.
	Store storage.PageStore
	// DataPages are the heap's page ids in physical order; len = the paper's T.
	DataPages []storage.PageID
	// NumRecords is the paper's N.
	NumRecords int
	// RecordsPerPage is the paper's R (page capacity used at build time).
	RecordsPerPage int
	// Indexes maps column name to its B-tree.
	Indexes map[string]*Index
}

// Index is one B-tree index over a table column.
type Index struct {
	// Column names the indexed column.
	Column string
	// Tree is the underlying B-tree ((key, seq) -> RID).
	Tree *btree.BTree
	// DistinctKeys is the paper's I (column cardinality).
	DistinctKeys int
	// MinKey and MaxKey bound the key domain (valid when the table is
	// non-empty).
	MinKey, MaxKey int64
}

// Errors returned by this package.
var (
	ErrNoSuchIndex = errors.New("table: no such index")
	ErrEmptyTable  = errors.New("table: empty table")
)

// T returns the number of data pages (paper notation).
func (t *Table) T() int { return len(t.DataPages) }

// N returns the number of records (paper notation).
func (t *Table) N() int { return t.NumRecords }

// Index returns the index on the named column.
func (t *Table) Index(column string) (*Index, error) {
	ix, ok := t.Indexes[column]
	if !ok {
		return nil, fmt.Errorf("%w: %q on table %q", ErrNoSuchIndex, column, t.Name)
	}
	return ix, nil
}

// ScanTrace returns the data-page reference trace of an index scan over the
// given bounds (nil bounds = full scan): one page id per qualifying index
// entry, in (key, seq) order.
func (ix *Index) ScanTrace(start, stop *btree.Bound) (lrusim.Trace, error) {
	var trace lrusim.Trace
	err := ix.Tree.Scan(start, stop, func(e btree.Entry) error {
		trace = append(trace, e.RID.Page)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("table: scan trace: %w", err)
	}
	return trace, nil
}

// FullScanTrace is ScanTrace(nil, nil): the trace LRU-Fit consumes.
func (ix *Index) FullScanTrace() (lrusim.Trace, error) {
	return ix.ScanTrace(nil, nil)
}

// ScanResult summarizes an index scan executed through a buffer pool.
type ScanResult struct {
	// Records is the number of qualifying records fetched.
	Records int
	// PagesAccessed is the number of distinct data pages touched (paper's A).
	PagesAccessed int
	// PageFetches is the number of physical page reads (paper's F).
	PageFetches int64
	// KeySum is a checksum over fetched record keys, proving the scan really
	// decoded each record rather than only counting.
	KeySum int64
}

// ScanThroughPool runs a real index scan: it iterates qualifying index
// entries in key order and fetches every record's data page through the
// pool, decoding the record to verify the RID. The pool's fetch counter
// gives the actual page-fetch count F for this scan at the pool's size.
func (t *Table) ScanThroughPool(pool buffer.Pool, column string, start, stop *btree.Bound) (ScanResult, error) {
	return t.ScanThroughPoolFiltered(pool, column, start, stop, nil)
}

// ScanThroughPoolFiltered is ScanThroughPool with an index-sargable
// predicate: filter is evaluated on each qualifying index entry and only
// entries it accepts have their records fetched — the paper's model of
// sargable predicates "applied to the index column values inspected during
// the (partial) index scan". A nil filter accepts everything.
func (t *Table) ScanThroughPoolFiltered(pool buffer.Pool, column string, start, stop *btree.Bound, filter func(btree.Entry) bool) (ScanResult, error) {
	ix, err := t.Index(column)
	if err != nil {
		return ScanResult{}, err
	}
	pool.Reset()
	seen := make(map[storage.PageID]struct{})
	var res ScanResult
	err = ix.Tree.Scan(start, stop, func(e btree.Entry) error {
		if filter != nil && !filter(e) {
			return nil
		}
		pg, err := pool.Get(e.RID.Page)
		if err != nil {
			return err
		}
		raw, err := pg.Record(e.RID.Slot)
		if err != nil {
			return fmt.Errorf("rid %v: %w", e.RID, err)
		}
		rec, err := storage.DecodeRecord(raw)
		if err != nil {
			return err
		}
		if rec.Key != e.Key {
			return fmt.Errorf("index entry key %d but record at %v has key %d", e.Key, e.RID, rec.Key)
		}
		if got := rec.SecondColumn(); got != e.Included {
			return fmt.Errorf("index entry included %d but record at %v has %d", e.Included, e.RID, got)
		}
		res.Records++
		res.KeySum += rec.Key
		seen[e.RID.Page] = struct{}{}
		return nil
	})
	if err != nil {
		return ScanResult{}, fmt.Errorf("table: scan through pool: %w", err)
	}
	res.PagesAccessed = len(seen)
	res.PageFetches = pool.Stats().Fetches
	return res, nil
}

// CountRange returns the number of records whose key lies within the bounds
// — the exact selectivity numerator for start/stop conditions.
func (ix *Index) CountRange(start, stop *btree.Bound) (int, error) {
	n := 0
	err := ix.Tree.Scan(start, stop, func(btree.Entry) error {
		n++
		return nil
	})
	return n, err
}

// Builder constructs a Table whose record placement is dictated by the
// caller, which is how the data generators realize the paper's clustering
// models. Records are presented in index-key order (the order index entries
// will have); each carries the page index it must land on.
type Builder struct {
	table   *Table
	heap    *storage.PlacedHeapBuilder
	entries map[string][]btree.Entry
	seqs    map[string]uint32
	keys    map[string]map[int64]struct{}
	minmax  map[string][2]int64
}

// NewBuilder starts a table with the given page count and page capacity
// backed by a fresh in-memory store.
func NewBuilder(name string, numPages, recordsPerPage int) (*Builder, error) {
	return NewBuilderOn(storage.NewMemStore(), name, numPages, recordsPerPage)
}

// NewBuilderOn is NewBuilder over a caller-provided page store — e.g. a
// storage.FileStore for a disk-backed table.
func NewBuilderOn(store storage.PageStore, name string, numPages, recordsPerPage int) (*Builder, error) {
	heap, err := storage.NewPlacedHeapBuilder(store, numPages, recordsPerPage)
	if err != nil {
		return nil, fmt.Errorf("table: builder: %w", err)
	}
	return &Builder{
		table: &Table{
			Name:           name,
			Store:          store,
			RecordsPerPage: recordsPerPage,
			Indexes:        make(map[string]*Index),
		},
		heap:    heap,
		entries: make(map[string][]btree.Entry),
		seqs:    make(map[string]uint32),
		keys:    make(map[string]map[int64]struct{}),
		minmax:  make(map[string][2]int64),
	}, nil
}

// Place stores one record with the given key for the given indexed column on
// the page with the given index. Records for one column must be presented in
// non-decreasing key order (index entry order); within a key, presentation
// order defines RID order in the index, exactly as the paper's unsorted-RID
// model requires.
func (b *Builder) Place(column string, pageIdx int, key int64) error {
	return b.PlaceEntry(column, pageIdx, key, 0)
}

// PlaceEntry is Place with a minor-column value (the paper's column b)
// stored both in the record payload and in the index entry, so that
// index-sargable predicates can be evaluated on index entries before any
// data page is fetched.
func (b *Builder) PlaceEntry(column string, pageIdx int, key int64, included uint32) error {
	if n := len(b.entries[column]); n > 0 && b.entries[column][n-1].Key > key {
		return fmt.Errorf("table: keys for column %q must be presented in order (got %d after %d)",
			column, key, b.entries[column][n-1].Key)
	}
	rid, err := b.heap.PlaceWith(pageIdx, key, included)
	if err != nil {
		return err
	}
	seq := b.seqs[column]
	b.seqs[column] = seq + 1
	b.entries[column] = append(b.entries[column], btree.Entry{Key: key, Seq: seq, Included: included, RID: rid})
	ks, ok := b.keys[column]
	if !ok {
		ks = make(map[int64]struct{})
		b.keys[column] = ks
	}
	ks[key] = struct{}{}
	mm, ok := b.minmax[column]
	if !ok {
		mm = [2]int64{key, key}
	} else {
		if key < mm[0] {
			mm[0] = key
		}
		if key > mm[1] {
			mm[1] = key
		}
	}
	b.minmax[column] = mm
	b.table.NumRecords++
	return nil
}

// Build finalizes the heap pages and bulk-loads one B-tree per column.
func (b *Builder) Build() (*Table, error) {
	ids, err := b.heap.Finish()
	if err != nil {
		return nil, err
	}
	b.table.DataPages = ids
	for column, entries := range b.entries {
		tr, err := btree.Create(b.table.Store)
		if err != nil {
			return nil, fmt.Errorf("table: build index %q: %w", column, err)
		}
		if err := tr.BulkLoad(entries); err != nil {
			return nil, fmt.Errorf("table: build index %q: %w", column, err)
		}
		mm := b.minmax[column]
		b.table.Indexes[column] = &Index{
			Column:       column,
			Tree:         tr,
			DistinctKeys: len(b.keys[column]),
			MinKey:       mm[0],
			MaxKey:       mm[1],
		}
	}
	return b.table, nil
}
