package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"epfis/internal/curvefit"
	"epfis/internal/lrusim"
	"epfis/internal/stats"
	"epfis/internal/storage"
)

// randomStats builds a random but always-valid IndexStats from rng, covering
// tiny and large tables, clustered and unclustered factors, and curves from 2
// to 10 knots (including N < T heaps, where the FMin consistency check is
// vacuous).
func randomStats(rng *rand.Rand) *stats.IndexStats {
	t := 1 + rng.Int63n(1_000_000)
	var n int64
	if rng.Intn(8) == 0 {
		n = 1 + rng.Int63n(t) // fewer records than pages
	} else {
		n = t + rng.Int63n(40*t+1)
	}
	i := 1 + rng.Int63n(n)
	bmin := 1 + rng.Int63n(t)
	bmax := bmin + rng.Int63n(t+1)

	knots := 2 + rng.Intn(9)
	pts := make([]curvefit.Point, knots)
	x := float64(bmin)
	y := float64(n) * (0.5 + rng.Float64())
	for k := range pts {
		pts[k] = curvefit.Point{X: x, Y: y}
		x += 1 + rng.Float64()*float64(bmax-bmin+1)
		y -= rng.Float64() * y / 2 // monotone-ish decreasing, stays positive
	}

	fmin := t + rng.Int63n(n+1)
	if n < t {
		fmin = rng.Int63n(n + 1) // FMin check only binds when N >= T
	}
	return &stats.IndexStats{
		Table:       "t",
		Column:      "c",
		T:           t,
		N:           n,
		I:           i,
		BMin:        bmin,
		BMax:        bmax,
		FMin:        fmin,
		C:           rng.Float64(),
		Curve:       curvefit.PolyLine{Knots: pts},
		GridPoints:  knots,
		CollectedAt: time.Unix(0, 0).UTC(),
	}
}

// assertBitIdentical compares every field of two estimates at the bit level.
func assertBitIdentical(t *testing.T, want, got Estimate, ctx string) {
	t.Helper()
	fields := []struct {
		name string
		w, g float64
	}{
		{"F", want.F, got.F},
		{"PFB", want.PFB, got.PFB},
		{"Base", want.Base, got.Base},
		{"Phi", want.Phi, got.Phi},
		{"Correction", want.Correction, got.Correction},
		{"SargableFactor", want.SargableFactor, got.SargableFactor},
	}
	for _, f := range fields {
		if math.Float64bits(f.w) != math.Float64bits(f.g) {
			t.Errorf("%s: %s = %v (bits %#x) compiled, %v (bits %#x) EstIO",
				ctx, f.name, f.g, math.Float64bits(f.g), f.w, math.Float64bits(f.w))
		}
	}
	if want.Nu != got.Nu {
		t.Errorf("%s: Nu = %d compiled, %d EstIO", ctx, got.Nu, want.Nu)
	}
}

// compareAcrossInputs checks EstIO and the compiled estimator agree bit for
// bit (results and error identity) over a grid of inputs spanning the valid
// domain, its edges, and invalid values.
func compareAcrossInputs(t *testing.T, st *stats.IndexStats, opts Options, rng *rand.Rand) {
	t.Helper()
	ce, err := Compile(st, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bs := []int64{0, 1, 2, st.BMin - 1, st.BMin, (st.BMin + st.BMax) / 2, st.BMax, st.BMax + 17, st.T, 4 * st.T, 1 << 40}
	sigmas := []float64{-0.5, 0, 1e-9, 0.001, 0.3, 0.999, 1, 1.5, math.NaN(), math.Inf(1)}
	sargs := []float64{0, 1e-6, 0.25, 0.999, 1, 2, math.NaN()}
	for i := 0; i < 6; i++ {
		bs = append(bs, 1+rng.Int63n(2*st.BMax))
		sigmas = append(sigmas, rng.Float64())
		sargs = append(sargs, math.Nextafter(0, 1)+rng.Float64())
	}
	for _, b := range bs {
		for _, sigma := range sigmas {
			for _, s := range sargs {
				in := Input{B: b, Sigma: sigma, S: s}
				want, wantErr := EstIO(st, in, opts)
				var got Estimate
				gotErr := ce.EstimateInto(&got, in)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("B=%d sigma=%v s=%v: EstIO err %v, compiled err %v", b, sigma, s, wantErr, gotErr)
				}
				if wantErr != nil {
					// Same typed sentinel, even though EstIO wraps with context.
					for _, sentinel := range []error{ErrBadBuffer, ErrBadSigma, ErrBadSarg} {
						if errors.Is(wantErr, sentinel) != errors.Is(gotErr, sentinel) {
							t.Fatalf("B=%d sigma=%v s=%v: EstIO err %v, compiled err %v disagree on %v",
								b, sigma, s, wantErr, gotErr, sentinel)
						}
					}
					if got != (Estimate{}) {
						t.Fatalf("B=%d sigma=%v s=%v: compiled left residue %+v on error", b, sigma, s, got)
					}
					continue
				}
				assertBitIdentical(t, want, got, "inputs")
			}
		}
	}
}

func TestCompiledMatchesEstIOBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		st := randomStats(rng)
		opts := Options{}
		switch trial % 4 {
		case 1:
			opts.PhiUsesMax = true
		case 2:
			opts.DisableCorrection = true
		case 3:
			opts.PhiUsesMax = true
			opts.DisableCorrection = true
		}
		compareAcrossInputs(t, st, opts, rng)
	}
}

// TestCompiledMatchesRealFit runs the equivalence against statistics produced
// by the real LRU-Fit pipeline rather than synthetic-random entries.
func TestCompiledMatchesRealFit(t *testing.T) {
	tr := make(lrusim.Trace, 0, 6000)
	state := uint64(7)
	for len(tr) < cap(tr) {
		state = state*6364136223846793005 + 1442695040888963407
		tr = append(tr, storage.PageID((state>>33)%600))
	}
	st, err := LRUFit(tr, Meta{Table: "t", Column: "c", T: 600, N: int64(len(tr)), I: 300}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	compareAcrossInputs(t, st, Options{}, rand.New(rand.NewSource(2)))
}

// TestCompileRejectsInvalidStats mirrors EstIO's per-call validation.
func TestCompileRejectsInvalidStats(t *testing.T) {
	st := randomStats(rand.New(rand.NewSource(3)))
	st.T = 0
	if _, err := Compile(st, Options{}); err == nil {
		t.Fatal("Compile accepted T = 0")
	}
}

// TestEstimateIntoAllocates proves the hot call is allocation-free on both
// the success and the error path.
func TestEstimateIntoAllocates(t *testing.T) {
	st := randomStats(rand.New(rand.NewSource(4)))
	ce, err := Compile(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out Estimate
	if n := testing.AllocsPerRun(200, func() {
		if err := ce.EstimateInto(&out, Input{B: st.BMin + 3, Sigma: 0.25, S: 0.5}); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EstimateInto success path allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := ce.EstimateInto(&out, Input{B: 0, Sigma: 0.25, S: 0.5}); err == nil {
			t.Fatal("no error for B = 0")
		}
	}); n != 0 {
		t.Errorf("EstimateInto error path allocates %v/op, want 0", n)
	}
}

// FuzzCompiledEquivalence derives an entry and one input from the fuzz
// corpus and requires EstIO and the compiled estimator to agree bit for bit.
func FuzzCompiledEquivalence(f *testing.F) {
	f.Add(int64(1), int64(100), uint16(3), int64(50), 0.1, 0.5)
	f.Add(int64(99), int64(5), uint16(2), int64(1), 1.0, 1.0)
	f.Add(int64(7), int64(1_000_000), uint16(10), int64(123456), 0.0001, 0.01)
	f.Fuzz(func(t *testing.T, seed, tPages int64, knots uint16, b int64, sigma, s float64) {
		rng := rand.New(rand.NewSource(seed))
		st := randomStats(rng)
		if tPages > 0 {
			st.T = 1 + tPages%1_000_000
			if st.N < st.T {
				st.FMin = rng.Int63n(st.N + 1)
			}
		}
		if err := st.Validate(); err != nil {
			t.Skip()
		}
		ce, err := Compile(st, Options{})
		if err != nil {
			t.Skip()
		}
		in := Input{B: b, Sigma: sigma, S: s}
		want, wantErr := EstIO(st, in, Options{})
		var got Estimate
		gotErr := ce.EstimateInto(&got, in)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("EstIO err %v, compiled err %v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		assertBitIdentical(t, want, got, "fuzz")
	})
}
