package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epfis/internal/lrusim"
	"epfis/internal/stats"
	"epfis/internal/storage"
)

func TestModelingRangeDefaults(t *testing.T) {
	cases := []struct {
		t       int64
		wantMin int64
		wantMax int64
	}{
		{10_000, 100, 10_000}, // 0.01*T dominates B_sml
		{500, 12, 500},        // B_sml = 12 dominates
		{8, 8, 8},             // tiny table: clamp to T
		{1, 1, 1},
	}
	for _, c := range cases {
		gotMin, gotMax := ModelingRange(c.t, Options{})
		if gotMin != c.wantMin || gotMax != c.wantMax {
			t.Errorf("ModelingRange(%d) = [%d, %d], want [%d, %d]", c.t, gotMin, gotMax, c.wantMin, c.wantMax)
		}
	}
}

func TestModelingRangeDBAOverride(t *testing.T) {
	gotMin, gotMax := ModelingRange(10_000, Options{BMin: 50, BMax: 2000})
	if gotMin != 50 || gotMax != 2000 {
		t.Errorf("override = [%d, %d]", gotMin, gotMax)
	}
}

func TestModelingGridArithmetic(t *testing.T) {
	grid := ModelingGrid(100, 10_000, SpacingArithmetic)
	if grid[0] != 100 || grid[len(grid)-1] != 10_000 {
		t.Fatalf("grid endpoints = %d, %d", grid[0], grid[len(grid)-1])
	}
	// Paper's step: 2*sqrt(9900) ~ 199. Interior steps must match.
	step := 2 * math.Sqrt(9900)
	for i := 1; i < len(grid)-1; i++ {
		d := float64(grid[i] - grid[i-1])
		if math.Abs(d-step) > 1.0 {
			t.Errorf("step %d->%d = %g, want ~%g", grid[i-1], grid[i], d, step)
		}
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatalf("grid not strictly increasing at %d", i)
		}
	}
}

func TestModelingGridGeometric(t *testing.T) {
	grid := ModelingGrid(100, 10_000, SpacingGeometric)
	if grid[0] != 100 || grid[len(grid)-1] != 10_000 {
		t.Fatalf("grid endpoints = %d, %d", grid[0], grid[len(grid)-1])
	}
	// Geometric spacing: later gaps larger than earlier gaps.
	first := grid[1] - grid[0]
	last := grid[len(grid)-1] - grid[len(grid)-2]
	if last <= first {
		t.Errorf("geometric grid gaps: first %d, last %d", first, last)
	}
}

func TestModelingGridDegenerate(t *testing.T) {
	if g := ModelingGrid(5, 5, SpacingArithmetic); len(g) != 1 || g[0] != 5 {
		t.Errorf("point grid = %v", g)
	}
	if g := ModelingGrid(3, 9, SpacingArithmetic); g[0] != 3 || g[len(g)-1] != 9 {
		t.Errorf("small grid = %v", g)
	}
	if g := ModelingGrid(0, 0, SpacingGeometric); len(g) != 1 || g[0] != 1 {
		t.Errorf("clamped grid = %v", g)
	}
}

// clusteredTrace: records in page order, perPage records per page.
func clusteredTrace(pages, perPage int) lrusim.Trace {
	tr := make(lrusim.Trace, 0, pages*perPage)
	for p := 0; p < pages; p++ {
		for r := 0; r < perPage; r++ {
			tr = append(tr, storage.PageID(p))
		}
	}
	return tr
}

// roundRobinTrace: worst-case unclustered — consecutive records on
// consecutive pages, cycling.
func roundRobinTrace(pages, perPage int) lrusim.Trace {
	tr := make(lrusim.Trace, 0, pages*perPage)
	for r := 0; r < perPage; r++ {
		for p := 0; p < pages; p++ {
			tr = append(tr, storage.PageID(p))
		}
	}
	return tr
}

func fitted(t *testing.T, trace lrusim.Trace, meta Meta, opts Options) *stats.IndexStats {
	t.Helper()
	st, err := LRUFit(trace, meta, opts)
	if err != nil {
		t.Fatalf("LRUFit: %v", err)
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("fitted stats invalid: %v", err)
	}
	return st
}

func TestLRUFitClusteredIndex(t *testing.T) {
	const pages, perPage = 2000, 50
	meta := Meta{Table: "t", Column: "c", T: pages, N: pages * perPage, I: pages * perPage}
	st := fitted(t, clusteredTrace(pages, perPage), meta, Options{})
	if st.C < 0.999 {
		t.Errorf("clustered C = %g, want ~1", st.C)
	}
	// FPF curve must be flat at T.
	for _, b := range []int64{st.BMin, (st.BMin + st.BMax) / 2, st.BMax} {
		got := st.Curve.Eval(float64(b))
		if math.Abs(got-float64(pages)) > 1 {
			t.Errorf("FPF(%d) = %g, want %d", b, got, pages)
		}
	}
	if st.FMin != pages {
		t.Errorf("FMin = %d, want %d", st.FMin, pages)
	}
}

func TestLRUFitWorstCaseUnclustered(t *testing.T) {
	const pages, perPage = 2000, 50
	n := int64(pages * perPage)
	meta := Meta{Table: "t", Column: "c", T: pages, N: n, I: n}
	st := fitted(t, roundRobinTrace(pages, perPage), meta, Options{})
	// Round-robin with BMin << pages: every reference misses -> F_min = N.
	if st.FMin != n {
		t.Errorf("FMin = %d, want %d", st.FMin, n)
	}
	if st.C > 0.001 {
		t.Errorf("worst-case C = %g, want ~0", st.C)
	}
	// At B = T the buffer holds everything: FPF(BMax) = T.
	if got := st.Curve.Eval(float64(st.BMax)); math.Abs(got-float64(pages)) > 1 {
		t.Errorf("FPF(BMax) = %g, want %d", got, pages)
	}
	// At B = BMin: FPF = N.
	if got := st.Curve.Eval(float64(st.BMin)); math.Abs(got-float64(n)) > 1 {
		t.Errorf("FPF(BMin) = %g, want %d", got, n)
	}
}

func TestLRUFitCurveAccuracy(t *testing.T) {
	// The 6-segment approximation must track the true FPF curve closely at
	// every grid point for a realistic mixed trace.
	rng := rand.New(rand.NewSource(9))
	const pages, perPage = 1500, 40
	n := pages * perPage
	trace := make(lrusim.Trace, 0, n)
	window := pages / 10
	for i := 0; i < n; i++ {
		base := i * pages / n
		p := base + rng.Intn(window) - window/2
		if p < 0 {
			p = 0
		}
		if p >= pages {
			p = pages - 1
		}
		trace = append(trace, storage.PageID(p))
	}
	meta := Meta{Table: "t", Column: "c", T: pages, N: int64(n), I: int64(n / 10)}
	st := fitted(t, trace, meta, Options{})
	truth := lrusim.Analyze(trace)
	grid := ModelingGrid(st.BMin, st.BMax, SpacingArithmetic)
	for _, b := range grid {
		want := float64(truth.Fetches(b))
		got := st.Curve.Eval(float64(b))
		if relErr := math.Abs(got-want) / math.Max(want, 1); relErr > 0.10 {
			t.Errorf("FPF(%d) = %g, truth %g (rel err %.1f%%)", b, got, want, relErr*100)
		}
	}
}

func TestLRUFitValidation(t *testing.T) {
	trace := clusteredTrace(10, 2)
	if _, err := LRUFit(trace, Meta{T: 0, N: 20, I: 20}, Options{}); !errors.Is(err, ErrBadMeta) {
		t.Errorf("T=0 err = %v", err)
	}
	if _, err := LRUFit(trace, Meta{T: 10, N: 20, I: 0}, Options{}); !errors.Is(err, ErrBadMeta) {
		t.Errorf("I=0 err = %v", err)
	}
	if _, err := LRUFit(trace, Meta{T: 10, N: 21, I: 5}, Options{}); !errors.Is(err, ErrBadTrace) {
		t.Errorf("length mismatch err = %v", err)
	}
}

func TestLRUFitTinyTable(t *testing.T) {
	// A 3-page table: modeling range collapses but must still work.
	meta := Meta{Table: "t", Column: "c", T: 3, N: 6, I: 6}
	st := fitted(t, clusteredTrace(3, 2), meta, Options{})
	if got := st.Curve.Eval(float64(st.BMax)); math.Abs(got-3) > 0.5 {
		t.Errorf("tiny-table FPF = %g", got)
	}
}

func TestEstIOFullScan(t *testing.T) {
	const pages, perPage = 2000, 50
	n := int64(pages * perPage)
	meta := Meta{Table: "t", Column: "c", T: pages, N: n, I: n}
	st := fitted(t, roundRobinTrace(pages, perPage), meta, Options{})
	truth := lrusim.Analyze(roundRobinTrace(pages, perPage))
	for _, b := range []int64{100, 500, 1000, 1500, 2000} {
		est, err := EstIO(st, Input{B: b, Sigma: 1, S: 1}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(truth.Fetches(int(b)))
		if relErr := math.Abs(est.F-want) / want; relErr > 0.10 {
			t.Errorf("full scan B=%d: est %g, actual %g (%.1f%%)", b, est.F, want, relErr*100)
		}
		// Full scans take no small-sigma correction (phi <= 1 < 3).
		if est.Nu != 0 {
			t.Errorf("full scan B=%d: nu = 1", b)
		}
	}
}

func TestEstIOClusteredPartialScan(t *testing.T) {
	const pages, perPage = 2000, 50
	n := int64(pages * perPage)
	meta := Meta{Table: "t", Column: "c", T: pages, N: n, I: n}
	st := fitted(t, clusteredTrace(pages, perPage), meta, Options{})
	for _, sigma := range []float64{0.1, 0.3, 0.7} {
		est, err := EstIO(st, Input{B: 200, Sigma: sigma, S: 1}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := sigma * pages
		if relErr := math.Abs(est.F-want) / want; relErr > 0.05 {
			t.Errorf("clustered sigma=%g: est %g, want ~%g", sigma, est.F, want)
		}
	}
}

func TestEstIOSmallSigmaCorrection(t *testing.T) {
	const pages, perPage = 2000, 50
	n := int64(pages * perPage)
	meta := Meta{Table: "t", Column: "c", T: pages, N: n, I: n}
	st := fitted(t, roundRobinTrace(pages, perPage), meta, Options{})
	// Buffer as large as the table (the full scan caches perfectly, so
	// PF_B = T and sigma*PF_B is tiny), tiny sigma, unclustered index:
	// all three of the paper's trigger conditions. The partial scan gets no
	// benefit from the big buffer — it touches each page once — so the
	// uncorrected estimate is an order of magnitude too low.
	in := Input{B: pages, Sigma: 0.01, S: 1}
	with, err := EstIO(st, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := EstIO(st, in, Options{DisableCorrection: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Nu != 1 {
		t.Fatalf("nu = 0, want 1 (phi=%g sigma=%g)", with.Phi, in.Sigma)
	}
	if with.Correction <= 0 {
		t.Errorf("correction = %g, want > 0", with.Correction)
	}
	if with.F <= without.F {
		t.Errorf("corrected %g <= uncorrected %g", with.F, without.F)
	}
	// Ground truth: simulate the actual partial scan (the first sigma*N
	// index entries) through an LRU buffer of size B.
	partial := roundRobinTrace(pages, perPage)[:int(in.Sigma*float64(n))]
	truth := float64(lrusim.Analyze(partial).Fetches(int(in.B)))
	if math.Abs(with.F-truth) >= math.Abs(without.F-truth) {
		t.Errorf("correction did not help: with=%g without=%g truth=%g", with.F, without.F, truth)
	}
	if relErr := math.Abs(with.F-truth) / truth; relErr > 0.35 {
		t.Errorf("corrected estimate %g vs truth %g (rel err %.0f%%)", with.F, truth, relErr*100)
	}
}

func TestEstIOCorrectionOffForClustered(t *testing.T) {
	const pages, perPage = 2000, 50
	n := int64(pages * perPage)
	meta := Meta{Table: "t", Column: "c", T: pages, N: n, I: n}
	st := fitted(t, clusteredTrace(pages, perPage), meta, Options{})
	est, err := EstIO(st, Input{B: 1800, Sigma: 0.01, S: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// (1 - C) ~ 0 kills the correction term even though nu = 1.
	if est.Correction > 1 {
		t.Errorf("clustered correction = %g, want ~0", est.Correction)
	}
}

func TestEstIOSargablePredicates(t *testing.T) {
	const pages, perPage = 2000, 50
	n := int64(pages * perPage)
	meta := Meta{Table: "t", Column: "c", T: pages, N: n, I: n / 100}
	st := fitted(t, roundRobinTrace(pages, perPage), meta, Options{})
	base, err := EstIO(st, Input{B: 500, Sigma: 0.3, S: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.SargableFactor != 1 {
		t.Errorf("S=1 sargable factor = %g, want 1", base.SargableFactor)
	}
	reduced, err := EstIO(st, Input{B: 500, Sigma: 0.3, S: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.SargableFactor >= 1 || reduced.SargableFactor <= 0 {
		t.Errorf("S=0.05 sargable factor = %g", reduced.SargableFactor)
	}
	if reduced.F >= base.F {
		t.Errorf("sargable estimate %g >= base %g", reduced.F, base.F)
	}
	// S=0 is out of the valid domain (0, 1]: a zero sargable selectivity
	// means "matches nothing" and must not be silently remapped to 1.
	if _, err := EstIO(st, Input{B: 500, Sigma: 0.3, S: 0}, Options{}); !errors.Is(err, ErrBadSarg) {
		t.Errorf("S=0 err = %v, want ErrBadSarg", err)
	}
}

func TestEstIOZeroSigma(t *testing.T) {
	meta := Meta{Table: "t", Column: "c", T: 100, N: 1000, I: 100}
	st := fitted(t, clusteredTrace(100, 10), meta, Options{})
	est, err := EstIO(st, Input{B: 50, Sigma: 0, S: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.F != 0 {
		t.Errorf("sigma=0 estimate = %g", est.F)
	}
}

func TestEstIOInputValidation(t *testing.T) {
	meta := Meta{Table: "t", Column: "c", T: 100, N: 1000, I: 100}
	st := fitted(t, clusteredTrace(100, 10), meta, Options{})
	bad := []struct {
		in   Input
		want error
	}{
		{Input{B: 0, Sigma: 0.5, S: 1}, ErrBadBuffer},
		{Input{B: -3, Sigma: 0.5, S: 1}, ErrBadBuffer},
		{Input{B: 10, Sigma: -0.1, S: 1}, ErrBadSigma},
		{Input{B: 10, Sigma: 1.1, S: 1}, ErrBadSigma},
		{Input{B: 10, Sigma: math.NaN(), S: 1}, ErrBadSigma},
		{Input{B: 10, Sigma: 0.5, S: -1}, ErrBadSarg},
		{Input{B: 10, Sigma: 0.5, S: 0}, ErrBadSarg},
		{Input{B: 10, Sigma: 0.5, S: 2}, ErrBadSarg},
		{Input{B: 10, Sigma: 0.5, S: math.NaN()}, ErrBadSarg},
	}
	for _, tc := range bad {
		_, err := EstIO(st, tc.in, Options{})
		if !errors.Is(err, tc.want) {
			t.Errorf("EstIO(%+v) err = %v, want %v", tc.in, err, tc.want)
		}
		// Every input sentinel also matches the umbrella ErrBadInput.
		if !errors.Is(err, ErrBadInput) {
			t.Errorf("EstIO(%+v) err = %v does not wrap ErrBadInput", tc.in, err)
		}
	}
}

func TestEstIOPhiVariants(t *testing.T) {
	const pages, perPage = 2000, 50
	n := int64(pages * perPage)
	meta := Meta{Table: "t", Column: "c", T: pages, N: n, I: n}
	st := fitted(t, roundRobinTrace(pages, perPage), meta, Options{})
	in := Input{B: 100, Sigma: 0.2, S: 1}
	minVar, err := EstIO(st, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxVar, err := EstIO(st, in, Options{PhiUsesMax: true})
	if err != nil {
		t.Fatal(err)
	}
	// With B/T = 0.05 < 3*sigma = 0.6 the min variant must not correct;
	// the printed max variant (phi = 1 >= 0.6) must.
	if minVar.Nu != 0 {
		t.Errorf("min variant nu = %d, want 0", minVar.Nu)
	}
	if maxVar.Nu != 1 {
		t.Errorf("max variant nu = %d, want 1", maxVar.Nu)
	}
}

func TestEstimateFetchesConvenience(t *testing.T) {
	meta := Meta{Table: "t", Column: "c", T: 100, N: 1000, I: 100}
	st := fitted(t, clusteredTrace(100, 10), meta, Options{})
	f, err := EstimateFetches(st, 50, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-50) > 3 {
		t.Errorf("EstimateFetches = %g, want ~50", f)
	}
}

// Property: estimates always land in the physical bounds [0, S*sigma*N].
func TestEstIOBoundsProperty(t *testing.T) {
	const pages, perPage = 500, 20
	n := int64(pages * perPage)
	meta := Meta{Table: "t", Column: "c", T: pages, N: n, I: n / 4}
	rng := rand.New(rand.NewSource(21))
	trace := make(lrusim.Trace, 0, n)
	for i := int64(0); i < n; i++ {
		trace = append(trace, storage.PageID(rng.Intn(pages)))
	}
	st, err := LRUFit(trace, meta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(bRaw uint16, sigmaRaw, sRaw uint8) bool {
		b := int64(bRaw)%3000 + 1
		sigma := float64(sigmaRaw) / 255
		s := float64(sRaw)/255*0.999 + 0.001
		est, err := EstIO(st, Input{B: b, Sigma: sigma, S: s}, Options{})
		if err != nil {
			return false
		}
		upper := s*sigma*float64(n) + 1e-9
		return est.F >= 0 && est.F <= upper && !math.IsNaN(est.F) && !math.IsInf(est.F, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: LRUFit's C is always in [0,1] and FMin in [T, N] for arbitrary
// traces covering all pages.
func TestLRUFitInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pages := 20 + rng.Intn(200)
		perPage := 2 + rng.Intn(20)
		n := pages * perPage
		trace := make(lrusim.Trace, 0, n)
		// Guarantee every page appears at least once.
		for p := 0; p < pages; p++ {
			trace = append(trace, storage.PageID(p))
		}
		for len(trace) < n {
			trace = append(trace, storage.PageID(rng.Intn(pages)))
		}
		meta := Meta{Table: "t", Column: "c", T: int64(pages), N: int64(n), I: int64(1 + rng.Intn(n))}
		st, err := LRUFit(trace, meta, Options{})
		if err != nil {
			return false
		}
		if st.C < 0 || st.C > 1 {
			return false
		}
		return st.FMin >= int64(pages) && st.FMin <= int64(n) && st.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLRUFitSpacingAndFitterVariants(t *testing.T) {
	const pages, perPage = 1000, 20
	n := int64(pages * perPage)
	meta := Meta{Table: "t", Column: "c", T: pages, N: n, I: n}
	trace := roundRobinTrace(pages, perPage)
	for _, opt := range []Options{
		{Spacing: SpacingGeometric},
		{Fitter: FitterGreedy},
		{Fitter: FitterEqualSpacing},
		{Segments: 3},
		{Segments: 12},
	} {
		st, err := LRUFit(trace, meta, opt)
		if err != nil {
			t.Fatalf("LRUFit(%+v): %v", opt, err)
		}
		if err := st.Validate(); err != nil {
			t.Errorf("variant %+v invalid: %v", opt, err)
		}
	}
}
