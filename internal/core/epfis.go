// Package core implements Algorithm EPFIS — Estimation of Page Fetches in
// Index Scans (Swami & Schiefer, VLDB Journal 4(4), 1995) — the paper's
// primary contribution.
//
// EPFIS has two subprograms:
//
//   - LRUFit runs at statistics-collection time, once per index. It scans the
//     index entries in key order (the data-page reference trace), simulates
//     an LRU buffer pool for every buffer size simultaneously (Mattson stack
//     analysis, package lrusim), samples the resulting full-index-scan
//     page-fetch (FPF) curve on a small grid of buffer sizes, approximates
//     the curve with a handful of line segments (package curvefit), computes
//     the clustering factor C = (N − F_min)/(N − T), and stores everything in
//     a catalog entry (package stats).
//
//   - EstIO runs at query-compilation time, whenever the optimizer needs the
//     page-fetch count for a candidate index scan. It interpolates the stored
//     segment approximation at the available buffer size B to get PF_B, scales
//     by the start/stop-condition selectivity σ, applies the paper's
//     small-selectivity heuristic correction (Equation 1), and applies the
//     urn-model reduction for index-sargable predicates.
//
// Deviations from the paper's text, both documented in DESIGN.md:
//
//  1. The paper prints φ = max(1, B/T), but its own usage ("φ = B/T is
//     significantly greater than σ", "σ ≪ B/T") requires φ = min(1, B/T):
//     with max, the B/T condition vanishes since φ ≥ 1 always. We default to
//     min and offer the printed variant via Options.PhiUsesMax for
//     comparison.
//  2. The sargable urn reduction is only applied when S < 1. Applied at
//     S = 1 it would shrink every estimate by ≈ 1/e even with no sargable
//     predicates, contradicting Equation 1 (which the paper presents as the
//     complete estimate in their absence).
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"epfis/internal/curvefit"
	"epfis/internal/lrusim"
	"epfis/internal/stats"
)

// DefaultSegments is the paper's chosen segment budget: "the estimation
// errors do not change very much when the number of line segments is greater
// than five. Hence, we use six line segments."
const DefaultSegments = 6

// DefaultBSml is the smallest buffer pool size modeled, "chosen to avoid the
// large effects on page fetches due to too small a buffer size. In our
// experiments, we set B_sml = 12."
const DefaultBSml = 12

// Spacing selects how LRU-Fit places the modeled buffer sizes B_1..B_k.
type Spacing int

const (
	// SpacingArithmetic is the paper's heuristic:
	// B_{i+1} = B_i + 2*sqrt(BMax − BMin).
	SpacingArithmetic Spacing = iota
	// SpacingGeometric is the footnote-2 variant suggested by Goetz Graefe:
	// B_i = BMin * (BMax/BMin)^{i/k}, using the same point count k as the
	// arithmetic rule would produce.
	SpacingGeometric
)

// Fitter selects the polyline fitting method for the FPF curve.
type Fitter int

const (
	// FitterOptimal minimizes maximum absolute error by dynamic programming
	// (the default).
	FitterOptimal Fitter = iota
	// FitterGreedy uses Douglas–Peucker-style recursive splitting.
	FitterGreedy
	// FitterEqualSpacing places knots at equally spaced grid indices.
	FitterEqualSpacing
)

// Options configures LRU-Fit and Est-IO. The zero value is the paper's
// configuration.
type Options struct {
	// BMin overrides the modeled range's lower end ("If desired, the range
	// of B can be specified by the database administrator"). 0 = automatic:
	// max(0.01*T, BSml).
	BMin int64
	// BMax overrides the modeled range's upper end. 0 = automatic: T.
	BMax int64
	// BSml is the smallest buffer size worth modeling; 0 = DefaultBSml.
	BSml int64
	// Segments is the polyline budget; 0 = DefaultSegments.
	Segments int
	// Spacing selects the modeling-grid rule.
	Spacing Spacing
	// Fitter selects the curve-fitting method.
	Fitter Fitter
	// StepFactor scales the modeling-grid step (0 or 1 = the paper's
	// formula). The paper's arithmetic step 2*sqrt(BMax − BMin) grows like
	// sqrt(T), so grid density *relative to T* improves with table size;
	// shape-preserving scaled-down experiments pass 1/sqrt(scale) so the
	// miniature sees the same relative grid density as the paper's
	// full-size tables (see DESIGN.md).
	StepFactor float64
	// PhiUsesMax reproduces the paper's printed φ = max(1, B/T) instead of
	// the intended min (see the package comment).
	PhiUsesMax bool
	// DisableCorrection turns off the Equation-1 small-σ correction term
	// (for the ablation benchmarks).
	DisableCorrection bool
}

func (o Options) segments() int {
	if o.Segments > 0 {
		return o.Segments
	}
	return DefaultSegments
}

func (o Options) bsml() int64 {
	if o.BSml > 0 {
		return o.BSml
	}
	return DefaultBSml
}

// Meta identifies the index being fitted and its table-level statistics.
type Meta struct {
	Table  string
	Column string
	// T is the number of data pages, N the number of records, I the number
	// of distinct key values.
	T, N, I int64
}

// Errors returned by this package.
var (
	ErrBadMeta   = errors.New("core: invalid index metadata")
	ErrBadInput  = errors.New("core: invalid estimation input")
	ErrBadTrace  = errors.New("core: trace does not match metadata")
	ErrEmptyGrid = errors.New("core: empty modeling grid")
)

// Typed sentinels for each Est-IO input check. They all wrap ErrBadInput, so
// errors.Is(err, ErrBadInput) keeps matching; network boundaries (the
// estimation service) map any of them to HTTP 400.
var (
	// ErrBadBuffer reports B < 1: a scan needs at least one buffer page.
	ErrBadBuffer = fmt.Errorf("%w: buffer pages B must be >= 1", ErrBadInput)
	// ErrBadSigma reports a start/stop selectivity outside [0, 1].
	ErrBadSigma = fmt.Errorf("%w: selectivity sigma must be in [0, 1]", ErrBadInput)
	// ErrBadSarg reports a sargable selectivity outside (0, 1]. S = 0 is
	// rejected rather than silently treated as "no sargable predicates":
	// a genuinely zero selectivity means the predicate matches nothing, and
	// remapping it to 1 would inflate the estimate by the whole scan.
	ErrBadSarg = fmt.Errorf("%w: sargable selectivity S must be in (0, 1]", ErrBadInput)
)

func (m Meta) validate() error {
	switch {
	case m.T < 1:
		return fmt.Errorf("%w: T = %d", ErrBadMeta, m.T)
	case m.N < 1:
		return fmt.Errorf("%w: N = %d", ErrBadMeta, m.N)
	case m.I < 1 || m.I > m.N:
		return fmt.Errorf("%w: I = %d with N = %d", ErrBadMeta, m.I, m.N)
	}
	return nil
}

// ModelingRange computes [BMin, BMax] per the paper: BMin = max(0.01*T,
// B_sml) and BMax = T, clamped so the range is non-empty and positive.
// DBA-specified overrides in opts take precedence.
func ModelingRange(t int64, opts Options) (bmin, bmax int64) {
	bmax = t
	if opts.BMax > 0 {
		bmax = opts.BMax
	}
	if bmax < 1 {
		bmax = 1
	}
	bmin = int64(math.Ceil(0.01 * float64(t)))
	if s := opts.bsml(); bmin < s {
		bmin = s
	}
	if opts.BMin > 0 {
		bmin = opts.BMin
	}
	if bmin < 1 {
		bmin = 1
	}
	if bmin > bmax {
		bmin = bmax
	}
	return bmin, bmax
}

// ModelingGrid returns the buffer sizes B_1..B_k to sample, spanning
// [bmin, bmax] inclusive, using the paper's spacing rule. It is
// ModelingGridStep with the paper's step factor of 1.
func ModelingGrid(bmin, bmax int64, spacing Spacing) []int {
	return ModelingGridStep(bmin, bmax, spacing, 1)
}

// ModelingGridStep is ModelingGrid with the arithmetic step multiplied by
// stepFactor (<= 0 treated as 1); the geometric variant inherits the
// resulting point count.
func ModelingGridStep(bmin, bmax int64, spacing Spacing, stepFactor float64) []int {
	if stepFactor <= 0 {
		stepFactor = 1
	}
	if bmin < 1 {
		bmin = 1
	}
	if bmax < bmin {
		bmax = bmin
	}
	if bmin == bmax {
		return []int{int(bmin)}
	}
	// The paper's arithmetic rule fixes the step; derive the point count k
	// from it so the geometric variant can use the same k.
	step := 2 * math.Sqrt(float64(bmax-bmin)) * stepFactor
	if step < 1 {
		step = 1
	}
	k := int(math.Ceil(float64(bmax-bmin)/step)) + 1
	if k < 2 {
		k = 2
	}
	grid := make([]int, 0, k+1)
	switch spacing {
	case SpacingGeometric:
		ratio := float64(bmax) / float64(bmin)
		for i := 0; i < k; i++ {
			b := float64(bmin) * math.Pow(ratio, float64(i)/float64(k-1))
			grid = append(grid, int(math.Round(b)))
		}
	default: // SpacingArithmetic
		b := float64(bmin)
		for b < float64(bmax) {
			grid = append(grid, int(math.Round(b)))
			b += step
		}
		grid = append(grid, int(bmax))
	}
	// Deduplicate while preserving order (rounding can collide).
	out := grid[:0]
	last := -1
	for _, b := range grid {
		if b <= last {
			continue
		}
		out = append(out, b)
		last = b
	}
	// Force the endpoints.
	if out[0] != int(bmin) {
		out = append([]int{int(bmin)}, out...)
	}
	if out[len(out)-1] != int(bmax) {
		out = append(out, int(bmax))
	}
	return out
}

// LRUFit is Subprogram LRU-Fit: given the data-page reference trace of a
// full index scan (one page id per index entry, in key order) it produces the
// catalog entry used by Est-IO. The trace is consumed in a single pass.
func LRUFit(trace lrusim.Trace, meta Meta, opts Options) (*stats.IndexStats, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}
	if int64(len(trace)) != meta.N {
		return nil, fmt.Errorf("%w: %d references for N = %d records", ErrBadTrace, len(trace), meta.N)
	}

	// Steps 1-3 run off the simulated curve; streaming ingestion reuses
	// them via LRUFitFromCurve with an incrementally accumulated curve.
	return LRUFitFromCurve(lrusim.Analyze(trace), meta, opts)
}

// LRUFitFromCurve is LRU-Fit starting from an already-computed fetch curve —
// the modeling-range, curve-fit, and clustering-factor steps without the
// Mattson pass. It serves callers that maintain the curve incrementally
// (lrusim.Accum over streamed trace batches), where no single trace slice of
// length N exists to hand to LRUFit. The curve must cover a full scan of the
// index described by meta: curve total = N references, curve cold = T pages.
func LRUFitFromCurve(curve *lrusim.FetchCurve, meta Meta, opts Options) (*stats.IndexStats, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}

	// Step 1: modeling range.
	bmin, bmax := ModelingRange(meta.T, opts)
	grid := ModelingGridStep(bmin, bmax, opts.Spacing, opts.StepFactor)
	if len(grid) == 0 {
		return nil, ErrEmptyGrid
	}

	// Step 2: sample the (pre-simulated) LRU buffer model.
	samples := lrusim.SampleCurve(curve, grid)

	// Step 3: approximate the FPF curve with line segments.
	pts := make([]curvefit.Point, len(samples))
	for i, s := range samples {
		pts[i] = curvefit.Point{X: float64(s.B), Y: float64(s.F)}
	}
	var (
		pl  curvefit.PolyLine
		err error
	)
	if len(pts) == 1 {
		// Degenerate range (tiny table): a flat one-knot "curve".
		pl = curvefit.PolyLine{Knots: []curvefit.Point{pts[0], {X: pts[0].X + 1, Y: pts[0].Y}}}
	} else {
		switch opts.Fitter {
		case FitterGreedy:
			pl, err = curvefit.FitGreedy(pts, opts.segments())
		case FitterEqualSpacing:
			pl, err = curvefit.FitEqualSpacing(pts, opts.segments())
		default:
			pl, err = curvefit.FitOptimal(pts, opts.segments())
		}
		if err != nil {
			return nil, fmt.Errorf("core: fit FPF curve: %w", err)
		}
	}

	// Clustering factor from the same pass: C = (N − F_min) / (N − T).
	fmin := curve.Fetches(int(bmin))
	c := 1.0
	if meta.N > meta.T {
		c = float64(meta.N-fmin) / float64(meta.N-meta.T)
	}
	c = clamp(c, 0, 1)

	return &stats.IndexStats{
		Table:       meta.Table,
		Column:      meta.Column,
		T:           meta.T,
		N:           meta.N,
		I:           meta.I,
		BMin:        bmin,
		BMax:        bmax,
		FMin:        fmin,
		C:           c,
		Curve:       pl,
		GridPoints:  len(samples),
		CollectedAt: time.Now().UTC(),
	}, nil
}

// Input is one Est-IO request.
type Input struct {
	// B is the number of LRU buffer pages available to the scan.
	B int64
	// Sigma is the selectivity of the starting and stopping conditions
	// (fraction of records in the scanned key range), in [0, 1].
	Sigma float64
	// S is the selectivity of the index-sargable predicates, strictly in
	// (0, 1]; pass 1 when there are no sargable predicates.
	S float64
}

// Estimate is the full Est-IO result with its intermediate terms, so tests,
// the optimizer's explain output, and the ablation benches can inspect the
// contribution of each step.
type Estimate struct {
	// F is the final page-fetch estimate.
	F float64
	// PFB is the full-scan page-fetch count interpolated at B.
	PFB float64
	// Base is sigma * PFB (step 5).
	Base float64
	// Phi is min(1, B/T) (or the paper-printed max variant).
	Phi float64
	// Nu is the correction indicator: 1 when Phi >= 3*sigma.
	Nu int
	// Correction is the Equation-1 heuristic term added to Base.
	Correction float64
	// SargableFactor is the urn-model reduction (1 when S = 1).
	SargableFactor float64
}

// EstIO is Subprogram Est-IO: the cheap per-plan estimation procedure.
func EstIO(st *stats.IndexStats, in Input, opts Options) (Estimate, error) {
	if err := st.Validate(); err != nil {
		return Estimate{}, fmt.Errorf("core: %w", err)
	}
	if in.B < 1 {
		return Estimate{}, fmt.Errorf("%w (got B = %d)", ErrBadBuffer, in.B)
	}
	if !(in.Sigma >= 0 && in.Sigma <= 1) { // negated form also rejects NaN
		return Estimate{}, fmt.Errorf("%w (got sigma = %g)", ErrBadSigma, in.Sigma)
	}
	if !(in.S > 0 && in.S <= 1) {
		return Estimate{}, fmt.Errorf("%w (got S = %g)", ErrBadSarg, in.S)
	}
	s := in.S
	var est Estimate
	if in.Sigma == 0 {
		est.SargableFactor = 1
		return est, nil
	}

	t := float64(st.T)
	n := float64(st.N)
	sigma := in.Sigma

	// Step 4: PF_B from the stored segment approximation; extrapolation is
	// clamped to the physical bounds of a full scan: T <= F <= N.
	est.PFB = st.Curve.EvalClamped(float64(in.B), t, n)

	// Step 5: scale down by sigma.
	est.Base = sigma * est.PFB

	// Step 6: heuristic correction for small sigma (Equation 1).
	if opts.PhiUsesMax {
		est.Phi = math.Max(1, float64(in.B)/t)
	} else {
		est.Phi = math.Min(1, float64(in.B)/t)
	}
	if est.Phi >= 3*sigma {
		est.Nu = 1
	}
	if est.Nu == 1 && !opts.DisableCorrection {
		cardenas := t * (1 - math.Pow(1-1/t, sigma*n))
		est.Correction = math.Min(1, est.Phi/(6*sigma)) * (1 - st.C) * cardenas
	}
	f := est.Base + float64(est.Nu)*est.Correction

	// Step 7: index-sargable predicate reduction via the urn model, applied
	// only when such predicates exist (S < 1).
	est.SargableFactor = 1
	if s < 1 {
		q := st.C*sigma*t + (1-st.C)*math.Min(t, sigma*n)
		k := s * sigma * n
		if q >= 1 {
			est.SargableFactor = 1 - math.Pow(1-1/q, k)
		}
		f *= est.SargableFactor
	}

	// Physical clamp: a scan fetching k records performs at most k fetches
	// (every fetch is triggered by some record access) and at least 0.
	maxF := s * sigma * n
	est.F = clamp(f, 0, maxF)
	return est, nil
}

// EstimateFetches is the one-line convenience over EstIO.
func EstimateFetches(st *stats.IndexStats, b int64, sigma, s float64) (float64, error) {
	e, err := EstIO(st, Input{B: b, Sigma: sigma, S: s}, Options{})
	if err != nil {
		return 0, err
	}
	return e.F, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
