package core

import (
	"math"

	"epfis/internal/stats"
)

// CompiledEstimator is Est-IO resolved against one catalog entry ahead of
// time: the entry is validated once, its polyline knots are flattened into
// plain float64 slices, and every per-entry constant of Equation 1 and the
// urn model (T, N, C, 1−C, 1−1/T) is precomputed. The hot call is then a
// branch-light interpolation plus a handful of float operations, with no
// allocation and no per-call validation of the statistics — exactly what an
// optimizer costing thousands of candidate plans per search needs.
//
// Compiled estimators are immutable and safe for concurrent use. EstimateInto
// is bit-identical to EstIO over the same entry and options: every
// intermediate term is computed by the same floating-point expression in the
// same order (see TestCompiledMatchesEstIOBitForBit and the equivalence
// fuzz target).
type CompiledEstimator struct {
	xs, ys []float64 // polyline knots, flat; len >= 2, xs strictly increasing

	t, n      float64 // float T (pages) and N (records)
	c         float64 // clustering factor
	oneMinusC float64 // 1 - C, shared by Equation 1 and the urn model
	powBase   float64 // 1 - 1/T, the Cardenas base

	phiUsesMax        bool
	disableCorrection bool
}

// Compile validates the entry once and resolves it (with opts) into a
// CompiledEstimator. The entry's slices are copied, so the caller may mutate
// or drop the entry afterwards.
func Compile(st *stats.IndexStats, opts Options) (*CompiledEstimator, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	knots := st.Curve.Knots
	ce := &CompiledEstimator{
		xs:                make([]float64, len(knots)),
		ys:                make([]float64, len(knots)),
		t:                 float64(st.T),
		n:                 float64(st.N),
		c:                 st.C,
		oneMinusC:         1 - st.C,
		phiUsesMax:        opts.PhiUsesMax,
		disableCorrection: opts.DisableCorrection,
	}
	ce.powBase = 1 - 1/ce.t
	for i, k := range knots {
		ce.xs[i] = k.X
		ce.ys[i] = k.Y
	}
	return ce, nil
}

// EstimateInto runs Est-IO against the compiled entry, writing the full
// result into out. It performs no allocation: invalid inputs return the bare
// typed sentinels (ErrBadBuffer, ErrBadSigma, ErrBadSarg) without wrapping,
// and out is fully overwritten on every call (including error returns, where
// it is zeroed).
func (ce *CompiledEstimator) EstimateInto(out *Estimate, in Input) error {
	*out = Estimate{}
	if in.B < 1 {
		return ErrBadBuffer
	}
	if !(in.Sigma >= 0 && in.Sigma <= 1) { // negated form also rejects NaN
		return ErrBadSigma
	}
	if !(in.S > 0 && in.S <= 1) {
		return ErrBadSarg
	}
	s := in.S
	if in.Sigma == 0 {
		out.SargableFactor = 1
		return nil
	}

	t := ce.t
	n := ce.n
	sigma := in.Sigma

	// Step 4: PF_B from the stored segment approximation, clamped to the
	// physical bounds of a full scan: T <= F <= N.
	out.PFB = clamp(ce.eval(float64(in.B)), t, n)

	// Step 5: scale down by sigma.
	out.Base = sigma * out.PFB

	// Step 6: heuristic correction for small sigma (Equation 1).
	if ce.phiUsesMax {
		out.Phi = math.Max(1, float64(in.B)/t)
	} else {
		out.Phi = math.Min(1, float64(in.B)/t)
	}
	if out.Phi >= 3*sigma {
		out.Nu = 1
	}
	if out.Nu == 1 && !ce.disableCorrection {
		cardenas := t * (1 - math.Pow(ce.powBase, sigma*n))
		out.Correction = math.Min(1, out.Phi/(6*sigma)) * ce.oneMinusC * cardenas
	}
	f := out.Base + float64(out.Nu)*out.Correction

	// Step 7: index-sargable predicate reduction via the urn model.
	out.SargableFactor = 1
	if s < 1 {
		q := ce.c*sigma*t + ce.oneMinusC*math.Min(t, sigma*n)
		k := s * sigma * n
		if q >= 1 {
			out.SargableFactor = 1 - math.Pow(1-1/q, k)
		}
		f *= out.SargableFactor
	}

	out.F = clamp(f, 0, s*sigma*n)
	return nil
}

// Estimate is EstimateInto returning the result by value.
func (ce *CompiledEstimator) Estimate(in Input) (Estimate, error) {
	var out Estimate
	err := ce.EstimateInto(&out, in)
	return out, err
}

// EstimateFetches is the one-line convenience over EstimateInto.
func (ce *CompiledEstimator) EstimateFetches(b int64, sigma, s float64) (float64, error) {
	var out Estimate
	if err := ce.EstimateInto(&out, Input{B: b, Sigma: sigma, S: s}); err != nil {
		return 0, err
	}
	return out.F, nil
}

// Pages reports the compiled entry's T (data pages), for callers that sanity-
// check buffer sizes against table size without re-fetching the entry.
func (ce *CompiledEstimator) Pages() int64 { return int64(ce.t) }

// eval is curvefit.PolyLine.Eval over the flattened knots: interpolation
// between knots, linear extrapolation beyond the ends. The arithmetic —
// including the binary search's probe order — mirrors the PolyLine
// implementation exactly so results stay bit-identical.
func (ce *CompiledEstimator) eval(x float64) float64 {
	xs, ys := ce.xs, ce.ys
	last := len(xs) - 1
	if x <= xs[0] {
		return lerpFlat(xs[0], ys[0], xs[1], ys[1], x)
	}
	if x >= xs[last] {
		return lerpFlat(xs[last-1], ys[last-1], xs[last], ys[last], x)
	}
	// sort.Search for the first knot with X >= x, inlined.
	i, j := 0, len(xs)
	for i < j {
		h := int(uint(i+j) >> 1)
		if !(xs[h] >= x) {
			i = h + 1
		} else {
			j = h
		}
	}
	return lerpFlat(xs[i-1], ys[i-1], xs[i], ys[i], x)
}

func lerpFlat(ax, ay, bx, by, x float64) float64 {
	if bx == ax {
		return ay
	}
	t := (x - ax) / (bx - ax)
	return ay + t*(by-ay)
}
