// Package optimizer implements the access-path selection problem that
// motivates the paper (§2): given a single-table query with optional range
// (starting/stopping) conditions, optional index-sargable predicates, and an
// optional required sort order, choose among
//
//  1. a table scan (+ sort if an order is required),
//  2. a partial scan of a relevant index, and
//  3. a full scan of a relevant index that delivers the required order,
//
// by comparing estimated page fetches. Index-scan fetch counts come from
// Algorithm EPFIS (Subprogram Est-IO) over the statistics catalog;
// selectivities come from equi-depth histograms (package histogram), so the
// optimizer estimates rather than being handed exact values.
//
// "The number of basic access plans to be considered is the number of
// relevant indexes plus one (for the table scan)."
package optimizer

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"epfis/internal/core"
	"epfis/internal/histogram"
	"epfis/internal/stats"
)

// RangePred is a starting/stopping condition pair on a column: the paper's
// "a >= lo AND a <= hi" (either side optional, either side exclusive).
type RangePred struct {
	Column string
	// HasLo/HasHi say whether each bound is present.
	HasLo, HasHi bool
	Lo, Hi       int64
	// LoExcl/HiExcl select strict comparison (>, <).
	LoExcl, HiExcl bool
}

// SargPred is an index-sargable predicate: evaluated on index entries during
// the scan, reducing records fetched but not the scanned range. Selectivity
// is estimated from the named column's histogram when available, otherwise
// the explicit Selectivity is used.
type SargPred struct {
	Column string
	// Equals is the predicate's comparison value (b = v form).
	Equals int64
	// Selectivity overrides histogram estimation when > 0.
	Selectivity float64
}

// Query is one single-table retrieval request.
type Query struct {
	// Table names the table (for catalog lookups).
	Table string
	// Range is the optional start/stop condition.
	Range *RangePred
	// Sargable lists index-sargable predicates (applied to index scans on
	// the Range column's index).
	Sargable []SargPred
	// OrderBy optionally names a column the results must be ordered by.
	OrderBy string
	// BufferPages is the LRU buffer available to the scan (the paper: the
	// DBA specifies it; here the caller does).
	BufferPages int64
	// EnableRIDList also considers RID-list (sort-before-fetch) plans, the
	// paper's §6 extension. Off by default to match the paper's §2 plan
	// space ("no RID-list sort, union, or intersection before the data
	// records are fetched").
	EnableRIDList bool
}

// PlanKind enumerates the basic access plans.
type PlanKind int

const (
	// TableScan reads every data page.
	TableScan PlanKind = iota
	// PartialIndexScan scans an index restricted by start/stop conditions.
	PartialIndexScan
	// FullIndexScan scans an entire index (typically for its order).
	FullIndexScan
	// RIDListScan collects qualifying RIDs, sorts them into page order, and
	// fetches each page once — the paper's §6 future-work plan family
	// ("use of RID-list operations"). It trades a RID sort (and the loss of
	// key order) for buffer-size independence.
	RIDListScan
)

// String names the plan kind.
func (k PlanKind) String() string {
	switch k {
	case TableScan:
		return "table-scan"
	case PartialIndexScan:
		return "partial-index-scan"
	case FullIndexScan:
		return "full-index-scan"
	case RIDListScan:
		return "rid-list-scan"
	default:
		return fmt.Sprintf("plan-kind-%d", int(k))
	}
}

// Plan is one costed access plan.
type Plan struct {
	Kind  PlanKind
	Index string // column of the index used; empty for table scans
	// Sigma and S are the selectivities the cost used.
	Sigma, S float64
	// DataFetches is the estimated data-page fetch count.
	DataFetches float64
	// SortPages is the estimated extra page I/O for an explicit sort step
	// (0 when the plan delivers the required order or no order is required).
	SortPages float64
	// Cost is the total estimated page I/O, the plan-comparison key.
	Cost float64
	// Explain describes how the cost was derived.
	Explain []string
}

// Optimizer owns the statistics needed for costing.
type Optimizer struct {
	catalog *stats.Catalog
	hists   map[string]*histogram.EquiDepth // "table.column" -> histogram
}

// Errors returned by this package.
var (
	ErrNoPlans     = errors.New("optimizer: no viable access plan")
	ErrNoCatalog   = errors.New("optimizer: nil catalog")
	ErrNoHistogram = errors.New("optimizer: no histogram for column")
	ErrBadQuery    = errors.New("optimizer: invalid query")
)

// New creates an optimizer over a statistics catalog. Catalog entries that
// carry key histograms are registered automatically; AddHistogram can add or
// override others.
func New(catalog *stats.Catalog) (*Optimizer, error) {
	if catalog == nil {
		return nil, ErrNoCatalog
	}
	o := &Optimizer{catalog: catalog, hists: make(map[string]*histogram.EquiDepth)}
	for _, key := range catalog.Keys() {
		st, err := catalog.Get(splitKey(key))
		if err != nil {
			continue
		}
		h, err := st.Histogram()
		if err != nil {
			return nil, fmt.Errorf("optimizer: catalog histogram for %s: %w", key, err)
		}
		if h != nil {
			o.hists[key] = h
		}
	}
	return o, nil
}

// AddHistogram registers the histogram for table.column.
func (o *Optimizer) AddHistogram(tbl, column string, h *histogram.EquiDepth) {
	o.hists[tbl+"."+column] = h
}

// Histogram returns the histogram registered for table.column.
func (o *Optimizer) Histogram(tbl, column string) (*histogram.EquiDepth, error) {
	h, ok := o.hists[tbl+"."+column]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoHistogram, tbl, column)
	}
	return h, nil
}

// EstimateSigma estimates the start/stop selectivity of a range predicate
// from the column's histogram. A nil predicate selects everything.
func (o *Optimizer) EstimateSigma(tbl string, r *RangePred) (float64, error) {
	if r == nil {
		return 1, nil
	}
	h, err := o.Histogram(tbl, r.Column)
	if err != nil {
		return 0, err
	}
	lo, hi := h.Min(), h.Max()
	loExcl, hiExcl := false, false
	if r.HasLo {
		lo, loExcl = r.Lo, r.LoExcl
	}
	if r.HasHi {
		hi, hiExcl = r.Hi, r.HiExcl
	}
	return h.EstimateRange(lo, hi, loExcl, hiExcl), nil
}

// EstimateS estimates the combined selectivity of the index-sargable
// predicates under the independence assumption ("Using the independence
// assumption, the number of qualifying records is given by N x sigma x S").
func (o *Optimizer) EstimateS(tbl string, preds []SargPred) (float64, error) {
	s := 1.0
	for _, p := range preds {
		switch {
		case p.Selectivity > 0:
			s *= p.Selectivity
		case p.Column != "":
			h, err := o.Histogram(tbl, p.Column)
			if err != nil {
				return 0, err
			}
			s *= h.EstimateEquals(p.Equals)
		default:
			return 0, fmt.Errorf("%w: sargable predicate needs a column or selectivity", ErrBadQuery)
		}
	}
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s, nil
}

// Choose enumerates and costs the basic access plans and returns the
// cheapest plus the full candidate list sorted by cost.
func (o *Optimizer) Choose(q Query) (Plan, []Plan, error) {
	if q.BufferPages < 1 {
		return Plan{}, nil, fmt.Errorf("%w: buffer pages = %d", ErrBadQuery, q.BufferPages)
	}
	entries := o.indexesOf(q.Table)
	if len(entries) == 0 {
		return Plan{}, nil, fmt.Errorf("%w: no statistics for table %q", ErrNoPlans, q.Table)
	}
	t := entries[0].T // all indexes of one table share T and N
	n := entries[0].N

	sigma, err := o.EstimateSigma(q.Table, q.Range)
	if err != nil {
		return Plan{}, nil, err
	}
	s, err := o.EstimateS(q.Table, q.Sargable)
	if err != nil {
		return Plan{}, nil, err
	}
	// Est-IO's domain is S in (0, 1]. A histogram can estimate a sargable
	// selectivity of exactly 0 (equality on an out-of-range key); floor it
	// at one qualifying record so plans still cost, rather than erroring.
	if s == 0 {
		s = 1 / float64(n)
	}

	var plans []Plan

	// Plan 1: table scan. Fetches exactly T pages; sort if order required.
	ts := Plan{
		Kind:        TableScan,
		Sigma:       sigma,
		S:           s,
		DataFetches: float64(t),
		Explain:     []string{fmt.Sprintf("table scan reads all T=%d pages", t)},
	}
	if q.OrderBy != "" {
		ts.SortPages = sortCost(sigma*s*float64(n), float64(t))
		ts.Explain = append(ts.Explain, fmt.Sprintf("explicit sort for ORDER BY %s: ~%.0f page I/Os", q.OrderBy, ts.SortPages))
	}
	ts.Cost = ts.DataFetches + ts.SortPages
	plans = append(plans, ts)

	// Index plans: one per relevant index.
	for _, st := range entries {
		relRange := q.Range != nil && q.Range.Column == st.Column
		relOrder := q.OrderBy != "" && q.OrderBy == st.Column
		if !relRange && !relOrder {
			continue // index is not relevant (paper's two relevance rules)
		}
		kind := FullIndexScan
		planSigma := 1.0
		if relRange {
			kind = PartialIndexScan
			planSigma = sigma
		}
		est, err := core.EstIO(st, core.Input{B: q.BufferPages, Sigma: planSigma, S: s}, core.Options{})
		if err != nil {
			return Plan{}, nil, err
		}
		p := Plan{
			Kind:        kind,
			Index:       st.Column,
			Sigma:       planSigma,
			S:           s,
			DataFetches: est.F,
			Explain: []string{
				fmt.Sprintf("%s on index(%s): Est-IO(B=%d, sigma=%.4f, S=%.4f) = %.1f data-page fetches",
					kind, st.Column, q.BufferPages, planSigma, s, est.F),
				fmt.Sprintf("catalog: T=%d N=%d I=%d C=%.3f, PF_B=%.1f, correction=%.1f, sargable factor=%.3f",
					st.T, st.N, st.I, st.C, est.PFB, est.Correction, est.SargableFactor),
			},
		}
		if q.OrderBy != "" && !relOrder {
			p.SortPages = sortCost(planSigma*s*float64(n), float64(t))
			p.Explain = append(p.Explain, fmt.Sprintf("explicit sort for ORDER BY %s: ~%.0f page I/Os", q.OrderBy, p.SortPages))
		}
		p.Cost = p.DataFetches + p.SortPages
		plans = append(plans, p)

		if q.EnableRIDList && relRange {
			rl := ridListPlan(st, q, planSigma, s)
			plans = append(plans, rl)
		}
	}

	sort.SliceStable(plans, func(i, j int) bool { return plans[i].Cost < plans[j].Cost })
	return plans[0], plans, nil
}

// indexesOf lists the catalog entries for a table, sorted by column.
func (o *Optimizer) indexesOf(tbl string) []*stats.IndexStats {
	var out []*stats.IndexStats
	for _, key := range o.catalog.Keys() {
		st, err := o.catalog.Get(splitKey(key))
		if err != nil {
			continue
		}
		if st.Table == tbl {
			out = append(out, st)
		}
	}
	return out
}

func splitKey(key string) (tbl, column string) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}

// ridListPlan costs the sort-before-fetch plan: fetch count equals the
// number of distinct pages holding the qualifying records, which is the
// paper's own Q model (pages referenced after start/stop conditions) thinned
// by the sargable urn factor — independent of buffer size. The plan pays a
// RID-list sort, and an explicit result sort when an order is required
// (page-ordered fetch destroys key order).
func ridListPlan(st *stats.IndexStats, q Query, sigma, s float64) Plan {
	t := float64(st.T)
	n := float64(st.N)
	qPages := st.C*sigma*t + (1-st.C)*math.Min(t, sigma*n)
	k := s * sigma * n
	fetches := qPages
	if s < 1 && qPages >= 1 {
		fetches = qPages * (1 - math.Pow(1-1/qPages, k))
	}
	ridSort := sortCost(sigma*n/8, t) // RID entries are ~8x smaller than records
	p := Plan{
		Kind:        RIDListScan,
		Index:       st.Column,
		Sigma:       sigma,
		S:           s,
		DataFetches: fetches,
		SortPages:   ridSort,
		Explain: []string{
			fmt.Sprintf("rid-list-scan on index(%s): Q=%.1f pages referenced, fetch each once (buffer-independent)", st.Column, qPages),
			fmt.Sprintf("RID-list sort: ~%.0f page I/Os", ridSort),
		},
	}
	if q.OrderBy != "" {
		extra := sortCost(k, t)
		p.SortPages += extra
		p.Explain = append(p.Explain, fmt.Sprintf("explicit sort for ORDER BY %s: ~%.0f page I/Os", q.OrderBy, extra))
	}
	p.Cost = p.DataFetches + p.SortPages
	return p
}

// sortCost models an external merge sort of k records occupying up to t
// pages: write + read of the spilled partition (2 * pages touched),
// charging nothing for tiny in-memory sorts.
func sortCost(records, t float64) float64 {
	pages := math.Min(t, math.Ceil(records/64)) // ~64 sort records per page
	if pages <= 1 {
		return 0
	}
	return 2 * pages
}
