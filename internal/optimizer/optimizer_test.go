package optimizer

import (
	"errors"
	"strings"
	"testing"

	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/histogram"
	"epfis/internal/stats"
)

// buildWorld creates a catalog + optimizer over two synthetic indexes on one
// table: "clustered" (K=0) and "scattered" (K=1), both on N=20000 records,
// T=500 pages.
func buildWorld(t testing.TB) (*Optimizer, *stats.Catalog) {
	t.Helper()
	catalog := stats.NewCatalog()
	opt, err := New(catalog)
	if err != nil {
		t.Fatal(err)
	}
	for col, k := range map[string]float64{"clustered": 0, "scattered": 1} {
		ds, err := datagen.GenerateDataset(datagen.Config{
			Name: "orders", N: 20_000, I: 400, R: 40, K: k, Seed: 5, Column: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := core.LRUFit(ds.Trace(), core.Meta{
			Table: "orders", Column: col, T: ds.T, N: 20_000, I: 400,
		}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := catalog.Put(st); err != nil {
			t.Fatal(err)
		}
		h, err := histogram.Build(ds.Keys, 32)
		if err != nil {
			t.Fatal(err)
		}
		opt.AddHistogram("orders", col, h)
	}
	return opt, catalog
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrNoCatalog) {
		t.Errorf("err = %v", err)
	}
}

func TestEstimateSigma(t *testing.T) {
	opt, _ := buildWorld(t)
	// Keys are 1..400 with 50 records each: [1, 100] covers ~25%.
	sigma, err := opt.EstimateSigma("orders", &RangePred{Column: "clustered", HasLo: true, Lo: 1, HasHi: true, Hi: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sigma < 0.2 || sigma > 0.3 {
		t.Errorf("sigma = %g, want ~0.25", sigma)
	}
	// Nil range: everything.
	sigma, err = opt.EstimateSigma("orders", nil)
	if err != nil || sigma != 1 {
		t.Errorf("nil range sigma = %g, %v", sigma, err)
	}
	// Unknown column.
	if _, err := opt.EstimateSigma("orders", &RangePred{Column: "nope"}); !errors.Is(err, ErrNoHistogram) {
		t.Errorf("err = %v", err)
	}
}

func TestEstimateS(t *testing.T) {
	opt, _ := buildWorld(t)
	s, err := opt.EstimateS("orders", nil)
	if err != nil || s != 1 {
		t.Errorf("no sargable: %g, %v", s, err)
	}
	s, err = opt.EstimateS("orders", []SargPred{{Selectivity: 0.5}, {Selectivity: 0.5}})
	if err != nil || s != 0.25 {
		t.Errorf("explicit S: %g, %v (independence)", s, err)
	}
	// Histogram-driven equality on 400 distinct values: ~1/400.
	s, err = opt.EstimateS("orders", []SargPred{{Column: "clustered", Equals: 42}})
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.001 || s > 0.01 {
		t.Errorf("equality S = %g, want ~0.0025", s)
	}
	if _, err := opt.EstimateS("orders", []SargPred{{}}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("empty pred err = %v", err)
	}
}

func TestChooseSelectiveRangeUsesIndex(t *testing.T) {
	opt, _ := buildWorld(t)
	best, plans, err := opt.Choose(Query{
		Table:       "orders",
		Range:       &RangePred{Column: "clustered", HasLo: true, Lo: 1, HasHi: true, Hi: 20},
		BufferPages: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Kind != PartialIndexScan || best.Index != "clustered" {
		t.Errorf("best = %s on %q, want partial index scan on clustered", best.Kind, best.Index)
	}
	// Candidates: table scan + the one relevant index.
	if len(plans) != 2 {
		t.Errorf("%d plans", len(plans))
	}
	if best.Cost >= float64(500) {
		t.Errorf("selective index scan cost %.1f >= table scan 500", best.Cost)
	}
}

func TestChooseUnselectiveRangePrefersTableScan(t *testing.T) {
	opt, _ := buildWorld(t)
	// Nearly the whole table via a scattered index with a tiny buffer:
	// the index scan would thrash; table scan must win.
	best, _, err := opt.Choose(Query{
		Table:       "orders",
		Range:       &RangePred{Column: "scattered", HasLo: true, Lo: 1, HasHi: true, Hi: 395},
		BufferPages: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Kind != TableScan {
		t.Errorf("best = %s, want table scan (unclustered index + big range + small buffer)", best.Kind)
	}
}

func TestBufferSizeFlipsPlanChoice(t *testing.T) {
	// The paper's whole point: F depends on B, so the best plan does too.
	opt, _ := buildWorld(t)
	q := Query{
		Table: "orders",
		Range: &RangePred{Column: "scattered", HasLo: true, Lo: 1, HasHi: true, Hi: 140},
	}
	q.BufferPages = 10 // thrash: index scan expensive
	small, _, err := opt.Choose(q)
	if err != nil {
		t.Fatal(err)
	}
	q.BufferPages = 500 // whole table cacheable: index scan cheap
	big, _, err := opt.Choose(q)
	if err != nil {
		t.Fatal(err)
	}
	if small.Kind != TableScan {
		t.Errorf("small buffer best = %s, want table scan", small.Kind)
	}
	if big.Kind != PartialIndexScan {
		t.Errorf("large buffer best = %s, want index scan", big.Kind)
	}
}

func TestOrderByMakesFullIndexScanRelevant(t *testing.T) {
	opt, _ := buildWorld(t)
	best, plans, err := opt.Choose(Query{
		Table:       "orders",
		OrderBy:     "clustered",
		BufferPages: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Candidates: table scan (+sort) and full scan of the clustered index.
	if len(plans) != 2 {
		t.Fatalf("%d plans", len(plans))
	}
	var full *Plan
	for i := range plans {
		if plans[i].Kind == FullIndexScan {
			full = &plans[i]
		}
	}
	if full == nil {
		t.Fatal("no full-index-scan candidate")
	}
	if full.SortPages != 0 {
		t.Errorf("ordered index scan has sort cost %g", full.SortPages)
	}
	// The clustered full index scan reads ~T pages with no sort: it should
	// beat table scan + sort.
	if best.Kind != FullIndexScan {
		t.Errorf("best = %s, want full index scan", best.Kind)
	}
}

func TestSargablePredicateReducesIndexCost(t *testing.T) {
	opt, _ := buildWorld(t)
	q := Query{
		Table:       "orders",
		Range:       &RangePred{Column: "scattered", HasLo: true, Lo: 1, HasHi: true, Hi: 100},
		BufferPages: 200,
	}
	plain, _, err := opt.Choose(q)
	if err != nil {
		t.Fatal(err)
	}
	q.Sargable = []SargPred{{Selectivity: 0.02}}
	sarg, _, err := opt.Choose(q)
	if err != nil {
		t.Fatal(err)
	}
	if sarg.Kind != PartialIndexScan {
		t.Fatalf("sargable best = %s", sarg.Kind)
	}
	if plain.Kind == PartialIndexScan && sarg.DataFetches >= plain.DataFetches {
		t.Errorf("sargable fetches %.1f >= plain %.1f", sarg.DataFetches, plain.DataFetches)
	}
}

func TestChooseValidation(t *testing.T) {
	opt, _ := buildWorld(t)
	if _, _, err := opt.Choose(Query{Table: "orders"}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("B=0 err = %v", err)
	}
	if _, _, err := opt.Choose(Query{Table: "ghost", BufferPages: 10}); !errors.Is(err, ErrNoPlans) {
		t.Errorf("unknown table err = %v", err)
	}
}

func TestPlansSortedByCostAndExplained(t *testing.T) {
	opt, _ := buildWorld(t)
	_, plans, err := opt.Choose(Query{
		Table:       "orders",
		Range:       &RangePred{Column: "clustered", HasLo: true, Lo: 1, HasHi: true, Hi: 200},
		OrderBy:     "clustered",
		BufferPages: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Cost < plans[i-1].Cost {
			t.Errorf("plans not sorted at %d", i)
		}
	}
	for _, p := range plans {
		if len(p.Explain) == 0 {
			t.Errorf("plan %s has no explanation", p.Kind)
		}
	}
}

func TestPlanKindString(t *testing.T) {
	if TableScan.String() != "table-scan" ||
		PartialIndexScan.String() != "partial-index-scan" ||
		FullIndexScan.String() != "full-index-scan" {
		t.Error("PlanKind.String broken")
	}
	if !strings.Contains(PlanKind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}

func TestSplitKey(t *testing.T) {
	tbl, col := splitKey("orders.date")
	if tbl != "orders" || col != "date" {
		t.Errorf("splitKey = %q, %q", tbl, col)
	}
	tbl, col = splitKey("a.b.c")
	if tbl != "a.b" || col != "c" {
		t.Errorf("splitKey = %q, %q", tbl, col)
	}
}

func TestRIDListPlanEnabled(t *testing.T) {
	opt, _ := buildWorld(t)
	q := Query{
		Table:       "orders",
		Range:       &RangePred{Column: "scattered", HasLo: true, Lo: 1, HasHi: true, Hi: 140},
		BufferPages: 10, // tiny buffer: the plain index scan thrashes
	}
	_, plain, err := opt.Choose(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plain {
		if p.Kind == RIDListScan {
			t.Fatal("RID-list plan offered without EnableRIDList")
		}
	}
	q.EnableRIDList = true
	best, plans, err := opt.Choose(q)
	if err != nil {
		t.Fatal(err)
	}
	var rl *Plan
	for i := range plans {
		if plans[i].Kind == RIDListScan {
			rl = &plans[i]
		}
	}
	if rl == nil {
		t.Fatal("no RID-list candidate")
	}
	// Buffer-size independence: with a tiny buffer the RID-list plan must
	// beat the thrashing plain index scan on an unclustered index.
	var plainIdx *Plan
	for i := range plans {
		if plans[i].Kind == PartialIndexScan {
			plainIdx = &plans[i]
		}
	}
	if plainIdx == nil {
		t.Fatal("no plain index-scan candidate")
	}
	// At B=10 the plain scan re-fetches pages ~4x (2000 records over ~490
	// pages); the RID-list plan fetches each page once. It must dominate
	// the plain scan by a wide margin...
	if rl.Cost >= plainIdx.Cost/2 {
		t.Errorf("RID-list cost %.0f not well below plain index scan %.0f at B=10", rl.Cost, plainIdx.Cost)
	}
	// ...while the table scan stays best overall here: with sigma*N > T the
	// qualifying records touch essentially every page (Q ~ T), so the
	// RID-list plan is a table scan plus a sort.
	if best.Kind != TableScan {
		t.Errorf("best = %s, want table scan", best.Kind)
	}
	if rl.Cost > 1.2*best.Cost {
		t.Errorf("RID-list cost %.0f far above table scan %.0f", rl.Cost, best.Cost)
	}
}

func TestRIDListPlanWinsOnSelectiveUnclusteredScan(t *testing.T) {
	// sigma*N < T: the qualifying records touch only part of the table, so
	// fetching each of those pages once beats both the thrashing plain scan
	// and the full table scan.
	opt, _ := buildWorld(t)
	best, _, err := opt.Choose(Query{
		Table:         "orders",
		Range:         &RangePred{Column: "scattered", HasLo: true, Lo: 1, HasHi: true, Hi: 6},
		BufferPages:   10,
		EnableRIDList: true,
		Sargable:      []SargPred{{Selectivity: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Kind != RIDListScan {
		t.Errorf("best = %s (cost %.0f), want rid-list-scan", best.Kind, best.Cost)
	}
}

func TestRIDListPlanCostIndependentOfBuffer(t *testing.T) {
	opt, _ := buildWorld(t)
	q := Query{
		Table:         "orders",
		Range:         &RangePred{Column: "scattered", HasLo: true, Lo: 1, HasHi: true, Hi: 140},
		EnableRIDList: true,
	}
	get := func(b int64) float64 {
		q.BufferPages = b
		_, plans, err := opt.Choose(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range plans {
			if p.Kind == RIDListScan {
				return p.DataFetches
			}
		}
		t.Fatal("no rid-list plan")
		return 0
	}
	if a, b := get(10), get(500); a != b {
		t.Errorf("RID-list fetches depend on B: %g vs %g", a, b)
	}
}

func TestOptimizerAutoLoadsCatalogHistograms(t *testing.T) {
	// An optimizer built from a catalog whose entries carry histograms
	// needs no AddHistogram calls.
	catalog := stats.NewCatalog()
	ds, err := datagen.GenerateDataset(datagen.Config{
		Name: "auto", N: 8_000, I: 200, R: 40, K: 0.3, Seed: 2, Column: "k",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.LRUFit(ds.Trace(), core.Meta{Table: "auto", Column: "k", T: ds.T, N: 8_000, I: 200}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := histogram.Build(ds.Keys, 16)
	if err != nil {
		t.Fatal(err)
	}
	st.KeyHistogram = h.Buckets()
	if err := catalog.Put(st); err != nil {
		t.Fatal(err)
	}
	opt, err := New(catalog)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := opt.EstimateSigma("auto", &RangePred{Column: "k", HasLo: true, Lo: 1, HasHi: true, Hi: 50})
	if err != nil {
		t.Fatalf("histogram not auto-loaded: %v", err)
	}
	if sigma < 0.2 || sigma > 0.3 {
		t.Errorf("sigma = %g, want ~0.25", sigma)
	}
	best, _, err := opt.Choose(Query{
		Table: "auto", BufferPages: 50,
		Range: &RangePred{Column: "k", HasLo: true, Lo: 1, HasHi: true, Hi: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost <= 0 {
		t.Error("bad plan cost")
	}
}
