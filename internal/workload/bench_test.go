package workload

import (
	"math"
	"testing"
	"testing/quick"

	"epfis/internal/lrusim"
)

// legacyBufferSweep is the pre-fix implementation (accumulating float steps
// with a boundary fudge), kept only as the reference the regression test
// compares against.
func legacyBufferSweep(t int64, minAbs int64) []int {
	step := float64(t) * 0.05
	if step < 1 {
		step = 1
	}
	lo := math.Max(float64(minAbs), step)
	hi := 0.9 * float64(t)
	var out []int
	for b := lo; b <= hi+1e-9; b += step {
		out = append(out, int(math.Round(b)))
	}
	return out
}

func TestBufferSweepMatchesLegacyStepping(t *testing.T) {
	// The indexed stepping must reproduce the accumulated stepping on every
	// table size the experiments use: all GWL table sizes at every scale,
	// the synthetic sizes, and a property sweep over arbitrary shapes.
	// sameSweep compares point lists; at an exact .5 rounding boundary
	// (e.g. T=774: 300 + 5*38.7 = 493.5) the legacy accumulated drift chose
	// a side arbitrarily, so a ±1 difference there is the fix working as
	// intended, not a regression.
	sameSweep := func(tt, floor int64, got, want []int) (ok bool, detail string) {
		if len(got) != len(want) {
			return false, "length"
		}
		step := math.Max(float64(tt)*0.05, 1)
		lo := math.Max(float64(floor), step)
		for i := range got {
			if got[i] == want[i] {
				continue
			}
			v := lo + float64(i)*step
			tie := math.Abs(v-math.Floor(v)-0.5) < 1e-6
			if !tie || got[i]-want[i] > 1 || want[i]-got[i] > 1 {
				return false, "point"
			}
		}
		return true, ""
	}
	cases := []struct{ t, floor int64 }{
		{10_000, 300}, {774, 300}, {1093, 300}, {1945, 300}, {4857, 300},
		{100, 300}, {25_000, 300}, {25_000, 12}, {8, 1}, {1, 1},
		{96, 37}, {2_500, 30}, {250, 3},
	}
	for _, c := range cases {
		got, want := BufferSweep(c.t, c.floor), legacyBufferSweep(c.t, c.floor)
		if ok, detail := sameSweep(c.t, c.floor, got, want); !ok {
			t.Fatalf("T=%d floor=%d: %s mismatch: %v vs legacy %v", c.t, c.floor, detail, got, want)
		}
	}
	f := func(tRaw uint16, floorRaw uint16) bool {
		tt := int64(tRaw)%50_000 + 1
		floor := int64(floorRaw)%600 + 1
		ok, _ := sameSweep(tt, floor, BufferSweep(tt, floor), legacyBufferSweep(tt, floor))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestBufferSweepMonotoneWithinBounds(t *testing.T) {
	f := func(tRaw uint32) bool {
		tt := int64(tRaw)%1_000_000 + 1
		sweep := BufferSweep(tt, 300)
		for i, b := range sweep {
			if float64(b) > 0.9*float64(tt)+1 {
				return false
			}
			if i > 0 && b <= sweep[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// benchScans draws the paper's standard 200-scan mix on a mid-size dataset.
func benchScans(b *testing.B) (*Generator, []Scan) {
	b.Helper()
	ds := dataset(b, 100_000, 1_000, 0.2, 1)
	g, err := NewGenerator(ds, 7)
	if err != nil {
		b.Fatal(err)
	}
	return g, g.Mix(200, 0.5)
}

// BenchmarkMeasure200Scans is the paper's per-figure measurement workload:
// 200 partial scans, one Mattson pass each, with pooled per-worker scratch.
func BenchmarkMeasure200Scans(b *testing.B) {
	g, scans := benchScans(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Measure(g.ds, scans)
	}
}

// BenchmarkMeasure200ScansLegacy measures the same workload the way the
// pre-pooling code did — a fresh tree simulator, hash map, and histogram per
// scan — as the allocation baseline for the perf report.
func BenchmarkMeasure200ScansLegacy(b *testing.B) {
	g, scans := benchScans(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make([]Measured, len(scans))
		for j, s := range scans {
			tr := g.ds.SliceTrace(s.Lo, s.Hi)
			out[j] = Measured{Scan: s, Curve: (lrusim.TreeSimulator{}).Run(tr).FetchCurve()}
		}
	}
}
