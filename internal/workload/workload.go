// Package workload generates the paper's experimental scan workloads (§5)
// and measures the quantities the error metric needs.
//
// A partial scan is described by starting and stopping key values. The paper
// draws scans as follows: a "small" scan draws r uniformly from [0, 0.2), a
// "large" scan from [0.2, 1]; a starting key k1 is picked at random so that
// at least rN records have key values >= k1, and the stopping key k2 is the
// smallest key >= k1 such that the range [k1, k2] contains >= rN records.
// The comparison workload is 200 scans with equal probability of small and
// large.
//
// The error metric is the paper's aggregate relative error,
//
//	sum_i (e_i - a_i) / sum_i a_i,
//
// chosen over mean per-scan relative error because "for the optimizer, it is
// the absolute difference that is important".
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"epfis/internal/datagen"
	"epfis/internal/lrusim"
	"epfis/internal/storage"
)

// Scan is one partial index scan, expressed over the dataset's index-entry
// array: entries [Lo, Hi) qualify. Scans always align with key-value
// boundaries (start/stop conditions are predicates on key values).
type Scan struct {
	// Lo and Hi delimit the qualifying index entries, [Lo, Hi).
	Lo, Hi int
	// StartKey and StopKey are the inclusive key-range endpoints.
	StartKey, StopKey int64
	// Sigma is the exact selectivity (Hi-Lo)/N.
	Sigma float64
}

// Records returns the number of qualifying records.
func (s Scan) Records() int { return s.Hi - s.Lo }

// Generator draws scans over one dataset, deterministically per seed.
type Generator struct {
	ds     *datagen.Dataset
	bounds []int // bounds[k] = first entry index of the k-th distinct key
	rng    *rand.Rand
}

// ErrEmptyDataset reports a dataset with no entries.
var ErrEmptyDataset = errors.New("workload: empty dataset")

// NewGenerator prepares a scan generator for the dataset.
func NewGenerator(ds *datagen.Dataset, seed int64) (*Generator, error) {
	if len(ds.Keys) == 0 {
		return nil, ErrEmptyDataset
	}
	return &Generator{ds: ds, bounds: ds.KeyRankBounds(), rng: rand.New(rand.NewSource(seed))}, nil
}

// scanFor draws one scan with target fraction r of the records.
func (g *Generator) scanFor(r float64) Scan {
	n := len(g.ds.Keys)
	count := int(math.Ceil(r * float64(n)))
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	// Starting keys s with at least count records at or above bounds[s]:
	// bounds[s] <= n - count. bounds is sorted, binary search the cutoff.
	keys := len(g.bounds) - 1
	cutoff := sort.SearchInts(g.bounds[:keys], n-count+1) // first s with bounds[s] > n-count
	if cutoff < 1 {
		cutoff = 1
	}
	s := g.rng.Intn(cutoff)
	lo := g.bounds[s]
	// Smallest e >= s with bounds[e+1] - lo >= count.
	e := sort.SearchInts(g.bounds[s+1:], lo+count) + s
	if e >= keys {
		e = keys - 1
	}
	hi := g.bounds[e+1]
	return Scan{
		Lo: lo, Hi: hi,
		StartKey: g.ds.Keys[lo],
		StopKey:  g.ds.Keys[hi-1],
		Sigma:    float64(hi-lo) / float64(n),
	}
}

// Small draws a small scan: r uniform in [0, 0.2).
func (g *Generator) Small() Scan { return g.scanFor(g.rng.Float64() * 0.2) }

// Large draws a large scan: r uniform in [0.2, 1].
func (g *Generator) Large() Scan { return g.scanFor(0.2 + g.rng.Float64()*0.8) }

// Full returns the full index scan.
func (g *Generator) Full() Scan {
	n := len(g.ds.Keys)
	return Scan{
		Lo: 0, Hi: n,
		StartKey: g.ds.Keys[0], StopKey: g.ds.Keys[n-1],
		Sigma: 1,
	}
}

// Mix draws count scans; each is small with probability smallProb, otherwise
// large. The paper's standard workload is Mix(200, 0.5).
func (g *Generator) Mix(count int, smallProb float64) []Scan {
	scans := make([]Scan, count)
	for i := range scans {
		if g.rng.Float64() < smallProb {
			scans[i] = g.Small()
		} else {
			scans[i] = g.Large()
		}
	}
	return scans
}

// Measured pairs a scan with its exact LRU fetch curve, so the actual page
// fetches a_i at any buffer size B are an O(1) lookup.
type Measured struct {
	Scan  Scan
	Curve *lrusim.FetchCurve
}

// Measure computes the fetch curve of each scan's partial trace with one
// Mattson stack pass per scan. The curve gives the ground-truth a_i for
// every buffer size simultaneously. Passes are independent pure
// computations, so they run on all CPUs; the result order matches scans.
// Workers claim scan indexes off an atomic counter (no feeder goroutine,
// no per-index channel handoff) and each owns one lrusim.Scratch plus one
// trace buffer, so a 200-scan measurement reuses per-worker structures
// instead of allocating fresh maps, trees, and histograms per scan.
func Measure(ds *datagen.Dataset, scans []Scan) []Measured {
	out := make([]Measured, len(scans))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(scans) {
		workers = len(scans)
	}
	// Dataset pages are numbered 0..T-1, so T-1 bounds every trace the
	// workers build; hinting it skips Scratch's per-scan max-id scan.
	maxPage := storage.PageID(0)
	if ds.T > 0 {
		maxPage = storage.PageID(ds.T - 1)
	}
	measureRange := func(scratch *lrusim.Scratch, buf lrusim.Trace, i int) lrusim.Trace {
		s := scans[i]
		buf = ds.SliceTraceInto(buf, s.Lo, s.Hi)
		scratch.ResetHint(maxPage)
		out[i] = Measured{Scan: s, Curve: scratch.Analyze(buf)}
		return buf
	}
	if workers <= 1 {
		scratch := lrusim.NewScratch()
		var buf lrusim.Trace
		for i := range scans {
			buf = measureRange(scratch, buf, i)
		}
		return out
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := lrusim.NewScratch()
			var buf lrusim.Trace
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scans) {
					return
				}
				buf = measureRange(scratch, buf, i)
			}
		}()
	}
	wg.Wait()
	return out
}

// ErrorMetric accumulates the paper's aggregate relative error.
type ErrorMetric struct {
	sumEst, sumActual float64
	n                 int
}

// Add records one (estimate, actual) pair.
func (m *ErrorMetric) Add(estimate, actual float64) {
	m.sumEst += estimate
	m.sumActual += actual
	m.n++
}

// Count reports the number of pairs.
func (m *ErrorMetric) Count() int { return m.n }

// Relative returns sum(e_i - a_i) / sum(a_i), the paper's metric,
// or an error when no actuals were recorded.
func (m *ErrorMetric) Relative() (float64, error) {
	if m.sumActual == 0 {
		return 0, fmt.Errorf("workload: error metric undefined: sum of actuals is zero (%d pairs)", m.n)
	}
	return (m.sumEst - m.sumActual) / m.sumActual, nil
}

// Percent returns Relative() * 100.
func (m *ErrorMetric) Percent() (float64, error) {
	r, err := m.Relative()
	return r * 100, err
}

// BufferSweep returns the buffer sizes the paper's error plots sweep: from
// max(minAbs, 0.05*T) to 0.9*T in steps of 0.05*T. The paper uses
// minAbs = 300; scaled-down experiments pass a proportionally smaller floor.
// The sweep is empty when the floor exceeds 0.9*T.
//
// Points are computed by integer index — round(lo + i*step) — rather than by
// accumulating b += step, so no floating-point drift builds up across the
// sweep. The point count comes from the closed form once; its tolerance only
// absorbs the representation error of step and hi themselves (e.g. T=10000:
// lo + 17*step and 0.9*T are both "9000" up to ulps), not accumulated error.
func BufferSweep(t int64, minAbs int64) []int {
	step := float64(t) * 0.05
	if step < 1 {
		step = 1
	}
	lo := math.Max(float64(minAbs), step)
	hi := 0.9 * float64(t)
	n := int(math.Floor((hi-lo)/step+1e-9)) + 1
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(math.Round(lo + float64(i)*step))
	}
	return out
}
