package workload

import (
	"math"
	"testing"
	"testing/quick"

	"epfis/internal/datagen"
	"epfis/internal/lrusim"
)

func dataset(t testing.TB, n, i int64, k float64, seed int64) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.GenerateDataset(datagen.Config{
		Name: "w", N: n, I: i, R: 20, Theta: 0, K: k, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewGeneratorEmpty(t *testing.T) {
	ds := &datagen.Dataset{}
	if _, err := NewGenerator(ds, 1); err != ErrEmptyDataset {
		t.Errorf("err = %v", err)
	}
}

func TestScanAlignsWithKeyBoundaries(t *testing.T) {
	ds := dataset(t, 10_000, 100, 0.5, 1)
	g, err := NewGenerator(ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		var s Scan
		if trial%2 == 0 {
			s = g.Small()
		} else {
			s = g.Large()
		}
		if s.Lo < 0 || s.Hi > len(ds.Keys) || s.Lo >= s.Hi {
			t.Fatalf("scan out of range: %+v", s)
		}
		// Boundary alignment: entry before Lo (if any) has a smaller key;
		// entry at Hi (if any) has a larger key.
		if s.Lo > 0 && ds.Keys[s.Lo-1] == ds.Keys[s.Lo] {
			t.Fatalf("scan starts mid-key: %+v", s)
		}
		if s.Hi < len(ds.Keys) && ds.Keys[s.Hi-1] == ds.Keys[s.Hi] {
			t.Fatalf("scan stops mid-key: %+v", s)
		}
		if ds.Keys[s.Lo] != s.StartKey || ds.Keys[s.Hi-1] != s.StopKey {
			t.Fatalf("key bounds wrong: %+v", s)
		}
		if got := float64(s.Records()) / float64(len(ds.Keys)); math.Abs(got-s.Sigma) > 1e-12 {
			t.Fatalf("sigma mismatch: %+v", s)
		}
	}
}

func TestSmallAndLargeScanSizes(t *testing.T) {
	ds := dataset(t, 20_000, 200, 0.5, 1)
	g, err := NewGenerator(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if s := g.Small(); s.Sigma > 0.21+1.0/200 {
			t.Errorf("small scan sigma = %g", s.Sigma)
		}
		// Large scans request >= 0.2 of records; key granularity can only
		// push the realized fraction up.
		if s := g.Large(); s.Sigma < 0.2 {
			t.Errorf("large scan sigma = %g", s.Sigma)
		}
	}
}

func TestFullScan(t *testing.T) {
	ds := dataset(t, 5_000, 50, 0.2, 1)
	g, err := NewGenerator(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Full()
	if s.Lo != 0 || s.Hi != 5000 || s.Sigma != 1 {
		t.Errorf("full scan = %+v", s)
	}
}

func TestMixComposition(t *testing.T) {
	ds := dataset(t, 20_000, 200, 0.5, 1)
	g, err := NewGenerator(ds, 11)
	if err != nil {
		t.Fatal(err)
	}
	scans := g.Mix(200, 0.5)
	if len(scans) != 200 {
		t.Fatalf("Mix returned %d scans", len(scans))
	}
	small := 0
	for _, s := range scans {
		if s.Sigma <= 0.2 {
			small++
		}
	}
	// ~half small; allow generous binomial slack.
	if small < 60 || small > 140 {
		t.Errorf("small scans = %d of 200", small)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	ds := dataset(t, 10_000, 100, 0.3, 1)
	g1, _ := NewGenerator(ds, 42)
	g2, _ := NewGenerator(ds, 42)
	a := g1.Mix(50, 0.5)
	b := g2.Mix(50, 0.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan %d differs", i)
		}
	}
}

func TestMeasureMatchesDirectSimulation(t *testing.T) {
	ds := dataset(t, 8_000, 80, 1, 5)
	g, err := NewGenerator(ds, 9)
	if err != nil {
		t.Fatal(err)
	}
	scans := g.Mix(10, 0.5)
	measured := Measure(ds, scans)
	for i, m := range measured {
		trace := ds.SliceTrace(m.Scan.Lo, m.Scan.Hi)
		for _, b := range []int{1, 7, 50} {
			direct, err := lrusim.DirectFetches(trace, b)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Curve.Fetches(b); got != direct {
				t.Errorf("scan %d B=%d: %d vs direct %d", i, b, got, direct)
			}
		}
	}
}

func TestErrorMetric(t *testing.T) {
	var m ErrorMetric
	m.Add(10, 8)
	m.Add(6, 8)
	rel, err := m.Relative()
	if err != nil {
		t.Fatal(err)
	}
	if rel != 0 {
		t.Errorf("Relative = %g, want 0 (errors cancel in aggregate)", rel)
	}
	m.Add(24, 8)
	rel, err = m.Relative()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel-(40.0-24.0)/24.0) > 1e-12 {
		t.Errorf("Relative = %g", rel)
	}
	pct, err := m.Percent()
	if err != nil || math.Abs(pct-rel*100) > 1e-12 {
		t.Errorf("Percent = %g, %v", pct, err)
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d", m.Count())
	}
}

func TestErrorMetricUndefined(t *testing.T) {
	var m ErrorMetric
	if _, err := m.Relative(); err == nil {
		t.Error("empty metric defined")
	}
	m.Add(0, 0)
	if _, err := m.Relative(); err == nil {
		t.Error("zero-actual metric defined")
	}
}

func TestBufferSweepPaperShape(t *testing.T) {
	// Paper: T = 10000, floor 300: 0.05T = 500 > 300, so 500..9000 step 500.
	sweep := BufferSweep(10_000, 300)
	if len(sweep) != 18 {
		t.Fatalf("sweep has %d points: %v", len(sweep), sweep)
	}
	if sweep[0] != 500 || sweep[len(sweep)-1] != 9000 {
		t.Errorf("sweep endpoints %d, %d", sweep[0], sweep[len(sweep)-1])
	}
	// Small table with floor 300: floor dominates.
	sweep = BufferSweep(774, 300)
	if len(sweep) == 0 || sweep[0] != 300 {
		t.Errorf("CMAC sweep = %v", sweep)
	}
	if last := sweep[len(sweep)-1]; float64(last) > 0.9*774+1 {
		t.Errorf("sweep exceeds 0.9T: %d", last)
	}
	// Floor beyond 0.9T: empty.
	if sweep := BufferSweep(100, 300); len(sweep) != 0 {
		t.Errorf("expected empty sweep, got %v", sweep)
	}
}

// Property: generated scans always contain at least the requested fraction
// of records (key alignment rounds up).
func TestScanCoversRequestedFractionProperty(t *testing.T) {
	ds := dataset(t, 10_000, 100, 0.5, 2)
	g, err := NewGenerator(ds, 13)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rRaw uint8) bool {
		r := float64(rRaw) / 255
		s := g.scanFor(r)
		want := int(math.Ceil(r * float64(len(ds.Keys))))
		if want < 1 {
			want = 1
		}
		// The scan can fall short only if it ran into the end of the keys;
		// by construction of the start-key cutoff it must not.
		return s.Records() >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeasureParallelMatchesSerial(t *testing.T) {
	ds := dataset(t, 20_000, 200, 0.7, 9)
	g, err := NewGenerator(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	scans := g.Mix(64, 0.5)
	got := Measure(ds, scans) // parallel path (many scans)
	for i, m := range got {
		want := lrusim.Analyze(ds.SliceTrace(scans[i].Lo, scans[i].Hi))
		for _, b := range []int{1, 10, 100} {
			if m.Curve.Fetches(b) != want.Fetches(b) {
				t.Fatalf("scan %d B=%d: parallel %d vs serial %d", i, b, m.Curve.Fetches(b), want.Fetches(b))
			}
		}
		if m.Scan != scans[i] {
			t.Fatalf("scan %d order scrambled", i)
		}
	}
}
