package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 4); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := Build([]int64{1}, 0); err == nil {
		t.Error("0 buckets accepted")
	}
}

func TestSingleValue(t *testing.T) {
	h, err := Build([]int64{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 3 || h.Min() != 7 || h.Max() != 7 {
		t.Errorf("N=%d min=%d max=%d", h.N(), h.Min(), h.Max())
	}
	if got := h.EstimateRange(7, 7, false, false); got != 1 {
		t.Errorf("EstimateRange(7,7) = %g", got)
	}
	if got := h.EstimateEquals(7); got != 1 {
		t.Errorf("EstimateEquals(7) = %g", got)
	}
	if got := h.EstimateEquals(8); got != 0 {
		t.Errorf("EstimateEquals(8) = %g", got)
	}
}

func TestUniformRangeEstimates(t *testing.T) {
	values := make([]int64, 10_000)
	for i := range values {
		values[i] = int64(i)
	}
	h, err := Build(values, 20)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi int64
		want   float64
	}{
		{0, 9999, 1},
		{0, 4999, 0.5},
		{2500, 7499, 0.5},
		{0, 999, 0.1},
		{9900, 9999, 0.01},
	}
	for _, c := range cases {
		got := h.EstimateRange(c.lo, c.hi, false, false)
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("EstimateRange(%d, %d) = %g, want %g", c.lo, c.hi, got, c.want)
		}
	}
}

func TestExclusiveBounds(t *testing.T) {
	values := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h, err := Build(values, 5)
	if err != nil {
		t.Fatal(err)
	}
	incl := h.EstimateRange(3, 7, false, false)
	exLo := h.EstimateRange(3, 7, true, false)
	exHi := h.EstimateRange(3, 7, false, true)
	if exLo >= incl || exHi >= incl {
		t.Errorf("exclusive bounds not tighter: incl=%g exLo=%g exHi=%g", incl, exLo, exHi)
	}
	if got := h.EstimateRange(5, 5, true, false); got != 0 {
		// (5, 5] with integer keys = {nothing above 5 up to 5}... lo++ -> [6,5] empty.
		t.Errorf("empty exclusive range = %g", got)
	}
	if got := h.EstimateRange(7, 3, false, false); got != 0 {
		t.Errorf("inverted range = %g", got)
	}
}

func TestBucketsNeverSplitAValue(t *testing.T) {
	// 1000 copies of value 5 among other values: the bucket containing 5
	// must contain all of them.
	var values []int64
	for i := 0; i < 100; i++ {
		values = append(values, int64(i))
	}
	for i := 0; i < 1000; i++ {
		values = append(values, 50)
	}
	h, err := Build(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range h.Buckets() {
		if i > 0 {
			prev := h.Buckets()[i-1]
			if prev.Hi >= b.Lo {
				t.Errorf("buckets %d and %d overlap: %+v %+v", i-1, i, prev, b)
			}
		}
	}
	// Equality estimate for the heavy value should be near its true
	// frequency 1000/1100.
	got := h.EstimateEquals(50)
	want := 1001.0 / 1100.0
	if math.Abs(got-want)/want > 0.5 {
		t.Errorf("EstimateEquals(50) = %g, want ~%g", got, want)
	}
}

func TestSkewedEqualityEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var values []int64
	for i := 0; i < 20_000; i++ {
		values = append(values, int64(rng.Intn(100)))
	}
	h, err := Build(values, 16)
	if err != nil {
		t.Fatal(err)
	}
	// ~200 copies of each of 100 values: equality ~1/100.
	got := h.EstimateEquals(42)
	if math.Abs(got-0.01) > 0.005 {
		t.Errorf("EstimateEquals = %g, want ~0.01", got)
	}
}

func TestDistinctEstimateExact(t *testing.T) {
	values := []int64{5, 5, 1, 9, 9, 9, 3, 7}
	h, err := Build(values, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.DistinctEstimate(); got != 5 {
		t.Errorf("DistinctEstimate = %d, want 5", got)
	}
}

// Property: range estimates are within [0,1], monotone in range growth, and
// the full range estimates 1.
func TestRangeEstimateProperty(t *testing.T) {
	f := func(seed int64, bucketsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(2000)
		values := make([]int64, n)
		for i := range values {
			values[i] = int64(rng.Intn(500))
		}
		h, err := Build(values, int(bucketsRaw)%32+1)
		if err != nil {
			return false
		}
		if math.Abs(h.EstimateRange(h.Min(), h.Max(), false, false)-1) > 1e-9 {
			return false
		}
		lo := int64(rng.Intn(500))
		hi := lo + int64(rng.Intn(100))
		narrow := h.EstimateRange(lo, hi, false, false)
		wide := h.EstimateRange(lo-10, hi+10, false, false)
		return narrow >= 0 && narrow <= 1 && wide >= narrow-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: estimated selectivity tracks true selectivity for random ranges
// on uniform data within a loose tolerance.
func TestRangeAccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	values := make([]int64, 50_000)
	for i := range values {
		values[i] = int64(rng.Intn(10_000))
	}
	h, err := Build(values, 50)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := int64(rng.Intn(10_000))
		hi := lo + int64(rng.Intn(5_000))
		var truth int64
		for _, v := range values {
			if v >= lo && v <= hi {
				truth++
			}
		}
		want := float64(truth) / float64(len(values))
		got := h.EstimateRange(lo, hi, false, false)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("range [%d,%d]: est %g, true %g", lo, hi, got, want)
		}
	}
}

func TestFromBucketsRoundTrip(t *testing.T) {
	values := make([]int64, 5000)
	for i := range values {
		values[i] = int64(i % 250)
	}
	h, err := Build(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	re, err := FromBuckets(h.Buckets())
	if err != nil {
		t.Fatal(err)
	}
	if re.N() != h.N() || re.Min() != h.Min() || re.Max() != h.Max() {
		t.Errorf("round trip: N=%d min=%d max=%d", re.N(), re.Min(), re.Max())
	}
	for _, probe := range []struct{ lo, hi int64 }{{0, 249}, {10, 20}, {100, 240}} {
		a := h.EstimateRange(probe.lo, probe.hi, false, false)
		b := re.EstimateRange(probe.lo, probe.hi, false, false)
		if a != b {
			t.Errorf("range [%d,%d]: %g vs %g", probe.lo, probe.hi, a, b)
		}
	}
}

func TestFromBucketsValidation(t *testing.T) {
	bad := [][]Bucket{
		{},
		{{Lo: 5, Hi: 1, Count: 1, Distinct: 1}},
		{{Lo: 1, Hi: 5, Count: 0, Distinct: 0}},
		{{Lo: 1, Hi: 5, Count: 1, Distinct: 2}},
		{{Lo: 1, Hi: 5, Count: 5, Distinct: 5}, {Lo: 5, Hi: 9, Count: 5, Distinct: 5}}, // overlap
	}
	for i, b := range bad {
		if _, err := FromBuckets(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
