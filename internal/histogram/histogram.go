// Package histogram implements equi-depth histograms on integer key columns
// for selectivity estimation — the σ of the paper's starting and stopping
// conditions and the S of index-sargable equality predicates.
//
// The paper takes selectivity estimation as given ("Methods for estimating
// the selectivity are well known (Mannino et al., 1988)"); this package
// supplies that substrate so the optimizer demo estimates σ from statistics
// instead of being handed exact values.
package histogram

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadInput reports invalid build parameters.
var ErrBadInput = errors.New("histogram: invalid input")

// Bucket is one equi-depth bucket: keys in [Lo, Hi] with Count values, of
// which Distinct are distinct.
type Bucket struct {
	Lo, Hi   int64
	Count    int64
	Distinct int64
}

// EquiDepth is an equi-depth (equal-height) histogram over an int64 column.
type EquiDepth struct {
	buckets []Bucket
	n       int64
	min     int64
	max     int64
}

// Build constructs a compressed equi-depth histogram from the column's
// values (any order; a sorted copy is made internally). Values whose
// frequency reaches a full bucket's depth get singleton buckets (end-biased
// compression, as production optimizers do), so heavy hitters keep accurate
// equality estimates; the remaining values fill equi-depth buckets. The
// result may therefore hold slightly more buckets than requested.
func Build(values []int64, buckets int) (*EquiDepth, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("%w: no values", ErrBadInput)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("%w: %d buckets", ErrBadInput, buckets)
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	h := &EquiDepth{n: int64(len(sorted)), min: sorted[0], max: sorted[len(sorted)-1]}
	depth := (len(sorted) + buckets - 1) / buckets

	var cur *Bucket
	flush := func() {
		if cur != nil {
			h.buckets = append(h.buckets, *cur)
			cur = nil
		}
	}
	for start := 0; start < len(sorted); {
		// Extent of the run of the current value.
		end := start + 1
		for end < len(sorted) && sorted[end] == sorted[start] {
			end++
		}
		runLen := int64(end - start)
		v := sorted[start]
		if runLen >= int64(depth) {
			// Heavy value: its own singleton bucket.
			flush()
			h.buckets = append(h.buckets, Bucket{Lo: v, Hi: v, Count: runLen, Distinct: 1})
		} else {
			if cur == nil {
				cur = &Bucket{Lo: v, Hi: v}
			}
			cur.Hi = v
			cur.Count += runLen
			cur.Distinct++
			if cur.Count >= int64(depth) {
				flush()
			}
		}
		start = end
	}
	flush()
	return h, nil
}

// N reports the number of values summarized.
func (h *EquiDepth) N() int64 { return h.n }

// NumBuckets reports the number of buckets actually built.
func (h *EquiDepth) NumBuckets() int { return len(h.buckets) }

// Buckets returns a copy of the bucket list.
func (h *EquiDepth) Buckets() []Bucket {
	return append([]Bucket(nil), h.buckets...)
}

// Min and Max report the column's value range.
func (h *EquiDepth) Min() int64 { return h.min }

// Max reports the largest value.
func (h *EquiDepth) Max() int64 { return h.max }

// EstimateRange estimates the selectivity of lo <= key <= hi (inclusive
// bounds; use loExcl/hiExcl for strict comparisons). The estimate assumes
// uniform spread within each bucket.
func (h *EquiDepth) EstimateRange(lo, hi int64, loExcl, hiExcl bool) float64 {
	if loExcl {
		if lo == h.max {
			return 0
		}
		lo++
	}
	if hiExcl {
		if hi == h.min {
			return 0
		}
		hi--
	}
	if hi < lo {
		return 0
	}
	var covered float64
	for _, b := range h.buckets {
		covered += overlapFraction(b, lo, hi) * float64(b.Count)
	}
	return covered / float64(h.n)
}

// overlapFraction estimates the fraction of a bucket's values falling in
// [lo, hi], assuming uniform spread over the bucket's key span.
func overlapFraction(b Bucket, lo, hi int64) float64 {
	if hi < b.Lo || lo > b.Hi {
		return 0
	}
	if lo <= b.Lo && hi >= b.Hi {
		return 1
	}
	clampedLo := maxInt64(lo, b.Lo)
	clampedHi := minInt64(hi, b.Hi)
	span := float64(b.Hi-b.Lo) + 1
	return (float64(clampedHi-clampedLo) + 1) / span
}

// EstimateEquals estimates the selectivity of key = v using the containing
// bucket's count over its distinct values.
func (h *EquiDepth) EstimateEquals(v int64) float64 {
	for _, b := range h.buckets {
		if v >= b.Lo && v <= b.Hi {
			return float64(b.Count) / float64(b.Distinct) / float64(h.n)
		}
	}
	return 0
}

// DistinctEstimate sums per-bucket distinct counts; exact when buckets never
// split a value (which Build guarantees).
func (h *EquiDepth) DistinctEstimate() int64 {
	var d int64
	for _, b := range h.buckets {
		d += b.Distinct
	}
	return d
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// FromBuckets reconstructs a histogram from its serialized buckets (e.g.
// loaded from a statistics catalog). Buckets must be non-overlapping and
// ascending; counts and distincts must be positive.
func FromBuckets(buckets []Bucket) (*EquiDepth, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("%w: no buckets", ErrBadInput)
	}
	h := &EquiDepth{min: buckets[0].Lo, max: buckets[len(buckets)-1].Hi}
	for i, b := range buckets {
		if b.Hi < b.Lo {
			return nil, fmt.Errorf("%w: bucket %d inverted", ErrBadInput, i)
		}
		if b.Count < 1 || b.Distinct < 1 || b.Distinct > b.Count {
			return nil, fmt.Errorf("%w: bucket %d counts (%d, %d)", ErrBadInput, i, b.Count, b.Distinct)
		}
		if i > 0 && b.Lo <= buckets[i-1].Hi {
			return nil, fmt.Errorf("%w: bucket %d overlaps previous", ErrBadInput, i)
		}
		h.n += b.Count
	}
	h.buckets = append(h.buckets, buckets...)
	return h, nil
}
