package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// recordedSleeps swaps Retry's timer for a recorder, so backoff schedules
// are asserted without waiting.
func recordedSleeps() (*[]time.Duration, func(context.Context, time.Duration) error) {
	var ds []time.Duration
	return &ds, func(ctx context.Context, d time.Duration) error {
		ds = append(ds, d)
		return ctx.Err()
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	sleeps, sleep := recordedSleeps()
	calls := 0
	err := Retry(context.Background(), RetryPolicy{MaxAttempts: 5, Jitter: -1, Sleep: sleep},
		func(context.Context) error {
			calls++
			if calls < 3 {
				return errBoom
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
	// Two failures → two sleeps, pure exponential with jitter disabled.
	want := []time.Duration{DefaultBaseDelay, time.Duration(float64(DefaultBaseDelay) * DefaultMultiplier)}
	if len(*sleeps) != 2 || (*sleeps)[0] != want[0] || (*sleeps)[1] != want[1] {
		t.Fatalf("sleeps = %v, want %v", *sleeps, want)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	_, sleep := recordedSleeps()
	calls := 0
	err := Retry(context.Background(), RetryPolicy{MaxAttempts: 3, Sleep: sleep},
		func(context.Context) error { calls++; return errBoom })
	if !errors.Is(err, errBoom) || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{},
		func(context.Context) error { calls++; return Permanent(errBoom) })
	if !errors.Is(err, errBoom) || calls != 1 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestRetryHonorsAfterHint(t *testing.T) {
	sleeps, sleep := recordedSleeps()
	calls := 0
	hint := 1300 * time.Millisecond
	err := Retry(context.Background(), RetryPolicy{MaxAttempts: 2, Sleep: sleep},
		func(context.Context) error {
			calls++
			if calls == 1 {
				return After(errBoom, hint)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != hint {
		t.Fatalf("sleeps = %v, want exactly the Retry-After hint %v", *sleeps, hint)
	}
	if After(nil, time.Second) != nil {
		t.Fatal("After(nil) != nil")
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, RetryPolicy{MaxAttempts: 10, Sleep: func(context.Context, time.Duration) error { return nil }},
		func(context.Context) error {
			calls++
			if calls == 2 {
				cancel()
			}
			return errBoom
		})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want Canceled wrapping boom", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestRetryJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		sleeps, sleep := recordedSleeps()
		Retry(context.Background(), RetryPolicy{MaxAttempts: 4, Seed: seed, Sleep: sleep},
			func(context.Context) error { return errBoom })
		return *sleeps
	}
	a, b, c := run(3), run(3), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical jitter: %v", a)
	}
}

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second, Clock: clk.now})

	for i := 0; i < 3; i++ {
		if err := b.Do(func() error { return errBoom }); !errors.Is(err, errBoom) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state = %s, want open", got)
	}
	_, retryAfter, err := b.Begin()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Begin while open = %v", err)
	}
	if retryAfter <= 0 || retryAfter > time.Second {
		t.Fatalf("retryAfter = %v", retryAfter)
	}
	if opens, rejected := b.Stats(); opens != 1 || rejected != 1 {
		t.Fatalf("stats = %d opens, %d rejected", opens, rejected)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 2})
	b.Do(func() error { return errBoom })
	b.Do(func() error { return nil })
	b.Do(func() error { return errBoom })
	if got := b.State(); got != "closed" {
		t.Fatalf("state = %s, want closed (failures interleaved with success)", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second, Clock: clk.now})
	b.Do(func() error { return errBoom })
	if b.State() != "open" {
		t.Fatal("not open after failure")
	}

	// Cooldown elapses → exactly one probe admitted; a second concurrent
	// Begin is rejected while the probe is in flight.
	clk.advance(2 * time.Second)
	commit, _, err := b.Begin()
	if err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if _, _, err := b.Begin(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second probe admitted: %v", err)
	}

	// Failed probe re-opens immediately (one failure, regardless of the
	// configured threshold).
	commit(true)
	if b.State() != "open" {
		t.Fatalf("state after failed probe = %s", b.State())
	}

	// Next cooldown, successful probe closes.
	clk.advance(2 * time.Second)
	commit, _, err = b.Begin()
	if err != nil {
		t.Fatal(err)
	}
	commit(false)
	if b.State() != "closed" {
		t.Fatalf("state after successful probe = %s", b.State())
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

func TestBreakerCommitIsIdempotent(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 2})
	commit, _, err := b.Begin()
	if err != nil {
		t.Fatal(err)
	}
	commit(true)
	commit(true) // second call must not double-count
	if b.State() != "closed" {
		t.Fatalf("state = %s after one failure (threshold 2)", b.State())
	}
}

func TestBreakerOnStateChange(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var mu sync.Mutex
	var transitions []string
	var b *Breaker
	b = NewBreaker(BreakerConfig{
		Failures: 2, Cooldown: time.Second, Clock: clk.now,
		OnStateChange: func(from, to string) {
			mu.Lock()
			transitions = append(transitions, from+"->"+to)
			mu.Unlock()
			// Re-entering the breaker from the hook must not deadlock: the
			// hook runs outside the lock.
			_ = b.State()
		},
	})

	// Two failures open the breaker.
	for i := 0; i < 2; i++ {
		_ = b.Do(func() error { return errBoom })
	}
	// Cooldown expires; failed probe: open -> half-open -> open.
	clk.advance(2 * time.Second)
	_ = b.Do(func() error { return errBoom })
	// Successful probe closes: open -> half-open -> closed.
	clk.advance(2 * time.Second)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{
		"closed->open",
		"open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions[%d] = %s, want %s (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

func TestBreakerNoHookNoPanic(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 1})
	_ = b.Do(func() error { return errBoom })
	if b.State() != "open" {
		t.Fatalf("state = %s", b.State())
	}
}
