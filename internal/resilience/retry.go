// Package resilience provides the two small fault-handling primitives the
// estimation service and its client share: Retry (exponential backoff with
// seeded jitter, context-aware, honoring server-provided delay hints) and
// Breaker (a consecutive-failure circuit breaker with a half-open probe).
//
// Both are deliberately deterministic-friendly: Retry's jitter comes from a
// seeded source and its sleeps can be stubbed, and Breaker takes an
// injectable clock, so chaos tests assert exact behaviour instead of racing
// wall time.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Defaults for RetryPolicy zero values.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
	DefaultMultiplier  = 2.0
	DefaultJitter      = 0.2
)

// RetryPolicy configures Retry. The zero value retries DefaultMaxAttempts
// times with 50ms → 2s exponential backoff and 20% jitter.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (0 = DefaultMaxAttempts; 1 = no retries).
	MaxAttempts int
	// BaseDelay is the delay before the first retry (0 = DefaultBaseDelay).
	BaseDelay time.Duration
	// MaxDelay caps the grown delay (0 = DefaultMaxDelay).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (0 = DefaultMultiplier).
	Multiplier float64
	// Jitter is the fraction of the delay randomized symmetrically around
	// it, in [0, 1] (negative disables; 0 = DefaultJitter).
	Jitter float64
	// Seed makes the jitter sequence deterministic; 0 seeds from the
	// policy defaults (still deterministic: seed 1).
	Seed int64
	// Sleep, when non-nil, replaces the context-aware timer (tests).
	Sleep func(ctx context.Context, d time.Duration) error
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retry stops immediately and returns the original
// error. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// delayHintError carries a server-provided backoff hint (Retry-After).
type delayHintError struct {
	err error
	d   time.Duration
}

func (h *delayHintError) Error() string { return h.err.Error() }
func (h *delayHintError) Unwrap() error { return h.err }

// After wraps a retryable err with an explicit delay before the next
// attempt, overriding the policy's backoff — how an HTTP client honors a
// Retry-After header. A nil err stays nil.
func After(err error, d time.Duration) error {
	if err == nil {
		return nil
	}
	return &delayHintError{err: err, d: d}
}

// Retry runs fn until it succeeds, returns a Permanent error, exhausts the
// policy's attempts, or ctx is done. The error returned is fn's last error
// (unwrapped from Permanent/After), or ctx.Err() when the context ends the
// loop first.
func Retry(ctx context.Context, p RetryPolicy, fn func(ctx context.Context) error) error {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier <= 0 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter == 0 {
		p.Jitter = DefaultJitter
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}

	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return fmt.Errorf("%w (after %d attempts: %w)", cerr, attempt-1, err)
			}
			return cerr
		}
		err = fn(ctx)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt >= p.MaxAttempts {
			return err
		}
		next := delay
		var hint *delayHintError
		if errors.As(err, &hint) && hint.d > 0 {
			next = hint.d
		} else if p.Jitter > 0 {
			// Symmetric jitter: next in [delay*(1-j), delay*(1+j)].
			span := float64(next) * p.Jitter
			next = time.Duration(float64(next) + span*(2*rng.Float64()-1))
		}
		if serr := sleep(ctx, next); serr != nil {
			return fmt.Errorf("%w (after %d attempts: %w)", serr, attempt, err)
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// sleepCtx waits for d or for ctx, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Breaker defaults.
const (
	DefaultBreakerFailures = 5
	DefaultBreakerCooldown = 2 * time.Second
)

// ErrBreakerOpen is returned by Begin/Do while the breaker is open (also
// while a half-open probe is already in flight).
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig configures NewBreaker.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that opens the breaker
	// (0 = DefaultBreakerFailures).
	Failures int
	// Cooldown is how long the breaker stays open before letting one
	// half-open probe through (0 = DefaultBreakerCooldown).
	Cooldown time.Duration
	// Clock replaces time.Now (tests).
	Clock func() time.Time
	// OnStateChange, when non-nil, is called after every state transition
	// with the old and new state names ("closed", "open", "half-open"). It
	// runs outside the breaker's lock, so it may log or record metrics
	// without risking deadlock; it must not block for long.
	OnStateChange func(from, to string)
}

// Breaker is a consecutive-failure circuit breaker: Failures consecutive
// recorded failures open it; after Cooldown one probe is admitted, and its
// outcome closes or re-opens the circuit. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	opens    uint64
	rejected uint64
}

type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Failures <= 0 {
		cfg.Failures = DefaultBreakerFailures
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Begin asks to run one guarded operation. On admission it returns a commit
// function the caller must invoke exactly once with the operation's outcome;
// otherwise it returns ErrBreakerOpen and the time to wait before the next
// attempt is worth making (for a Retry-After header).
func (b *Breaker) Begin() (commit func(failure bool), retryAfter time.Duration, err error) {
	var notify func()
	b.mu.Lock()
	now := b.cfg.Clock()
	switch b.state {
	case stateOpen:
		if rem := b.openedAt.Add(b.cfg.Cooldown).Sub(now); rem > 0 {
			b.rejected++
			b.mu.Unlock()
			return nil, rem, ErrBreakerOpen
		}
		notify = b.setStateLocked(stateHalfOpen)
		fallthrough
	case stateHalfOpen:
		if b.probing {
			b.rejected++
			b.mu.Unlock()
			if notify != nil {
				notify()
			}
			return nil, b.cfg.Cooldown, ErrBreakerOpen
		}
		b.probing = true
	}
	commit = b.commitFunc()
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return commit, 0, nil
}

// setStateLocked transitions to the given state and, when a hook is
// configured, returns its invocation for the caller to run after releasing
// b.mu. Returns nil when nothing changed or no hook is set.
func (b *Breaker) setStateLocked(to breakerState) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	if b.cfg.OnStateChange == nil {
		return nil
	}
	fromName, toName := from.String(), to.String()
	hook := b.cfg.OnStateChange
	return func() { hook(fromName, toName) }
}

func (s breakerState) String() string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// commitFunc builds the once-only outcome recorder; callers hold b.mu.
func (b *Breaker) commitFunc() func(failure bool) {
	var once sync.Once
	return func(failure bool) {
		once.Do(func() {
			var notify func()
			b.mu.Lock()
			wasProbe := b.state == stateHalfOpen
			b.probing = false
			if !failure {
				notify = b.setStateLocked(stateClosed)
				b.consecutive = 0
			} else {
				b.consecutive++
				if wasProbe || b.consecutive >= b.cfg.Failures {
					notify = b.setStateLocked(stateOpen)
					b.openedAt = b.cfg.Clock()
					b.opens++
				}
			}
			b.mu.Unlock()
			if notify != nil {
				notify()
			}
		})
	}
}

// Do runs fn behind the breaker, recording err != nil as a failure.
func (b *Breaker) Do(fn func() error) error {
	commit, _, err := b.Begin()
	if err != nil {
		return err
	}
	ferr := fn()
	commit(ferr != nil)
	return ferr
}

// State reports "closed", "open", or "half-open" (for health/metrics).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		// An expired cooldown reads as half-open: the next Begin probes.
		if b.cfg.Clock().After(b.openedAt.Add(b.cfg.Cooldown)) {
			return "half-open"
		}
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Stats reports how many times the breaker opened and how many operations
// it rejected.
func (b *Breaker) Stats() (opens, rejected uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.rejected
}
