package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"epfis/internal/storage"
)

func newTree(t testing.TB) *BTree {
	t.Helper()
	tr, err := Create(storage.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func entryFor(i int) Entry {
	return Entry{Key: int64(i), Seq: uint32(i), RID: storage.RID{Page: storage.PageID(i / 10), Slot: uint16(i % 10)}}
}

func collect(t testing.TB, tr *BTree, start, stop *Bound) []Entry {
	t.Helper()
	var out []Entry
	if err := tr.Scan(start, stop, func(e Entry) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := newTree(t)
	if tr.NumEntries() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree: n=%d h=%d", tr.NumEntries(), tr.Height())
	}
	if got := collect(t, tr, nil, nil); len(got) != 0 {
		t.Errorf("scan of empty tree returned %d entries", len(got))
	}
	if err := tr.Check(); err != nil {
		t.Errorf("Check on empty tree: %v", err)
	}
}

func TestInsertAndScanSmall(t *testing.T) {
	tr := newTree(t)
	order := []int{5, 1, 9, 3, 7, 0, 8, 2, 6, 4}
	for _, i := range order {
		if err := tr.Insert(entryFor(i)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	got := collect(t, tr, nil, nil)
	if len(got) != 10 {
		t.Fatalf("scan returned %d entries", len(got))
	}
	for i, e := range got {
		if e.Key != int64(i) {
			t.Errorf("entry %d has key %d", i, e.Key)
		}
	}
	if err := tr.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert(entryFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(entryFor(1)); !errors.Is(err, ErrDupEntry) {
		t.Errorf("duplicate insert err = %v, want ErrDupEntry", err)
	}
	// Same key, different seq is allowed (duplicate column values).
	e := entryFor(1)
	e.Seq = 99
	if err := tr.Insert(e); err != nil {
		t.Errorf("same key different seq rejected: %v", err)
	}
}

func TestInsertManySplits(t *testing.T) {
	tr := newTree(t)
	const n = 2000 // forces multiple leaf and internal splits
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(n)
	for _, i := range perm {
		if err := tr.Insert(entryFor(i)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if tr.NumEntries() != n {
		t.Errorf("NumEntries = %d, want %d", tr.NumEntries(), n)
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d, expected splits to raise it", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	got := collect(t, tr, nil, nil)
	if len(got) != n {
		t.Fatalf("scan returned %d entries", len(got))
	}
	for i, e := range got {
		want := entryFor(i)
		if e != want {
			t.Fatalf("entry %d = %+v, want %+v", i, e, want)
		}
	}
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	const n = 3000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = entryFor(i)
	}
	bulk := newTree(t)
	if err := bulk.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if err := bulk.Check(); err != nil {
		t.Fatalf("Check after bulk load: %v", err)
	}
	if bulk.NumEntries() != n {
		t.Errorf("NumEntries = %d", bulk.NumEntries())
	}
	got := collect(t, bulk, nil, nil)
	if len(got) != n {
		t.Fatalf("bulk scan returned %d", len(got))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestBulkLoadValidation(t *testing.T) {
	tr := newTree(t)
	if err := tr.BulkLoad([]Entry{entryFor(2), entryFor(1)}); !errors.Is(err, ErrUnsorted) {
		t.Errorf("unsorted bulk load err = %v", err)
	}
	if err := tr.BulkLoad([]Entry{entryFor(1), entryFor(1)}); !errors.Is(err, ErrDupEntry) {
		t.Errorf("duplicate bulk load err = %v", err)
	}
	if err := tr.BulkLoad([]Entry{entryFor(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad([]Entry{entryFor(2)}); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("bulk load on non-empty err = %v", err)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := newTree(t)
	if err := tr.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if tr.NumEntries() != 0 {
		t.Error("empty bulk load changed count")
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr := newTree(t)
	// Keys 0, 10, 20, ..., 990.
	var entries []Entry
	for i := 0; i < 100; i++ {
		entries = append(entries, Entry{Key: int64(i * 10), Seq: 0, RID: storage.RID{Page: storage.PageID(i)}})
	}
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name        string
		start, stop *Bound
		first, last int64
		count       int
	}{
		{"full", nil, nil, 0, 990, 100},
		{"ge250", Ge(250), nil, 250, 990, 75},
		{"gt250", Gt(250), nil, 260, 990, 74},
		{"ge250exactkey", Ge(250), Le(250), 250, 250, 1},
		{"le500", nil, Le(500), 0, 500, 51},
		{"lt500", nil, Lt(500), 0, 490, 50},
		{"window", Ge(100), Lt(200), 100, 190, 10},
		{"betweenkeys", Ge(101), Le(199), 110, 190, 9},
		{"empty", Ge(991), nil, 0, 0, 0},
		{"inverted", Ge(500), Le(400), 0, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := collect(t, tr, c.start, c.stop)
			if len(got) != c.count {
				t.Fatalf("count = %d, want %d", len(got), c.count)
			}
			if c.count > 0 {
				if got[0].Key != c.first || got[len(got)-1].Key != c.last {
					t.Errorf("range [%d, %d], want [%d, %d]", got[0].Key, got[len(got)-1].Key, c.first, c.last)
				}
			}
		})
	}
}

func TestDuplicateKeysPreserveSeqOrder(t *testing.T) {
	// Within one key value, entries come back in Seq (insertion) order —
	// the "unsorted RIDs" behavior the paper's model assumes.
	tr := newTree(t)
	rids := []storage.RID{{Page: 42, Slot: 3}, {Page: 7, Slot: 1}, {Page: 99, Slot: 0}, {Page: 7, Slot: 2}}
	for seq, rid := range rids {
		if err := tr.Insert(Entry{Key: 5, Seq: uint32(seq), RID: rid}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Lookup(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rids) {
		t.Fatalf("Lookup returned %d RIDs", len(got))
	}
	for i := range rids {
		if got[i] != rids[i] {
			t.Errorf("RID %d = %v, want %v (insertion order must be preserved)", i, got[i], rids[i])
		}
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.Delete(250, 250)
	if err != nil || !ok {
		t.Fatalf("Delete(250) = %v, %v", ok, err)
	}
	ok, err = tr.Delete(250, 250)
	if err != nil || ok {
		t.Fatalf("second Delete(250) = %v, %v, want false", ok, err)
	}
	ok, err = tr.Delete(10_000, 0)
	if err != nil || ok {
		t.Fatalf("Delete(missing) = %v, %v", ok, err)
	}
	if tr.NumEntries() != 499 {
		t.Errorf("NumEntries = %d", tr.NumEntries())
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check after delete: %v", err)
	}
	got := collect(t, tr, Ge(249), Le(251))
	if len(got) != 2 || got[0].Key != 249 || got[1].Key != 251 {
		t.Errorf("scan around deleted key = %+v", got)
	}
}

func TestOpenPersistedTree(t *testing.T) {
	store := storage.NewMemStore()
	tr, err := Create(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := tr.Insert(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	meta := tr.MetaPageID()

	re, err := Open(store, meta)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumEntries() != 300 || re.Height() != tr.Height() {
		t.Errorf("reopened: n=%d h=%d, want n=300 h=%d", re.NumEntries(), re.Height(), tr.Height())
	}
	if err := re.Check(); err != nil {
		t.Fatalf("Check after reopen: %v", err)
	}
	got := collect(t, re, Ge(100), Lt(110))
	if len(got) != 10 {
		t.Errorf("reopened scan returned %d", len(got))
	}
}

func TestOpenRejectsNonMeta(t *testing.T) {
	store := storage.NewMemStore()
	id, err := store.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WritePage(id, storage.NewPage(id, storage.PageKindHeap)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(store, id); !errors.Is(err, ErrNoMetaPage) {
		t.Errorf("Open(heap page) err = %v", err)
	}
	if _, err := Open(store, 99); err == nil {
		t.Error("Open(missing page) succeeded")
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := tr.Scan(nil, nil, func(e Entry) error {
		n++
		if n == 5 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 5 {
		t.Errorf("visited %d entries, want 5", n)
	}
	wantErr := errors.New("boom")
	err = tr.Scan(nil, nil, func(e Entry) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("Scan error = %v, want boom", err)
	}
}

func TestEntryCompare(t *testing.T) {
	a := Entry{Key: 1, Seq: 1}
	b := Entry{Key: 1, Seq: 2}
	c := Entry{Key: 2, Seq: 0}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 || b.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("Entry.Compare broken")
	}
}

func TestBoundHelpers(t *testing.T) {
	if b := Ge(5); b.Key != 5 || !b.Inclusive {
		t.Error("Ge broken")
	}
	if b := Gt(5); b.Key != 5 || b.Inclusive {
		t.Error("Gt broken")
	}
	if b := Le(5); b.Key != 5 || !b.Inclusive {
		t.Error("Le broken")
	}
	if b := Lt(5); b.Key != 5 || b.Inclusive {
		t.Error("Lt broken")
	}
}

// Property: for random key multisets and random range bounds, the tree scan
// agrees with a sorted-slice reference implementation.
func TestScanMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		tr, err := Create(storage.NewMemStore())
		if err != nil {
			return false
		}
		ref := make([]Entry, 0, n)
		for i := 0; i < n; i++ {
			e := Entry{
				Key: int64(rng.Intn(50)), // few distinct values => duplicates
				Seq: uint32(i),
				RID: storage.RID{Page: storage.PageID(rng.Intn(100)), Slot: uint16(rng.Intn(10))},
			}
			if err := tr.Insert(e); err != nil {
				return false
			}
			ref = append(ref, e)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i].Compare(ref[j]) < 0 })
		if err := tr.Check(); err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			lo, hi := int64(rng.Intn(60)-5), int64(rng.Intn(60)-5)
			start := &Bound{Key: lo, Inclusive: rng.Intn(2) == 0}
			stop := &Bound{Key: hi, Inclusive: rng.Intn(2) == 0}
			var want []Entry
			for _, e := range ref {
				if start.Inclusive && e.Key < start.Key {
					continue
				}
				if !start.Inclusive && e.Key <= start.Key {
					continue
				}
				if stop.Inclusive && e.Key > stop.Key {
					continue
				}
				if !stop.Inclusive && e.Key >= stop.Key {
					continue
				}
				want = append(want, e)
			}
			var got []Entry
			if err := tr.Scan(start, stop, func(e Entry) error {
				got = append(got, e)
				return nil
			}); err != nil {
				return false
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: bulk load and incremental insert of the same entry set produce
// identical scans.
func TestBulkLoadEquivalentToInsertProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(600)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: int64(rng.Intn(100)), Seq: uint32(i), RID: storage.RID{Page: storage.PageID(i)}}
		}
		sorted := append([]Entry(nil), entries...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })

		bulk, err := Create(storage.NewMemStore())
		if err != nil {
			return false
		}
		if err := bulk.BulkLoad(sorted); err != nil {
			return false
		}
		inc, err := Create(storage.NewMemStore())
		if err != nil {
			return false
		}
		for _, e := range entries {
			if err := inc.Insert(e); err != nil {
				return false
			}
		}
		if bulk.Check() != nil || inc.Check() != nil {
			return false
		}
		var a, b []Entry
		bulk.Scan(nil, nil, func(e Entry) error { a = append(a, e); return nil })
		inc.Scan(nil, nil, func(e Entry) error { b = append(b, e); return nil })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr, err := Create(storage.NewMemStore())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Entry{Key: int64(rng.Intn(1 << 30)), Seq: uint32(i), RID: storage.RID{Page: storage.PageID(i)}}
		if err := tr.Insert(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	entries := make([]Entry, 100_000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), RID: storage.RID{Page: storage.PageID(i / 50)}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Create(storage.NewMemStore())
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.BulkLoad(entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullScan(b *testing.B) {
	tr, err := Create(storage.NewMemStore())
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]Entry, 100_000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), RID: storage.RID{Page: storage.PageID(i / 50)}}
	}
	if err := tr.BulkLoad(entries); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Scan(nil, nil, func(Entry) error { n++; return nil })
		if n != len(entries) {
			b.Fatal("bad scan")
		}
	}
}

func TestExclusiveStartAtMaxInt64(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert(Entry{Key: 1<<63 - 1, Seq: 0}); err != nil {
		t.Fatal(err)
	}
	// key > MaxInt64 must select nothing (and must not overflow).
	got := collect(t, tr, Gt(1<<63-1), nil)
	if len(got) != 0 {
		t.Errorf("Gt(MaxInt64) returned %d entries", len(got))
	}
	// key >= MaxInt64 selects the entry.
	got = collect(t, tr, Ge(1<<63-1), nil)
	if len(got) != 1 {
		t.Errorf("Ge(MaxInt64) returned %d entries", len(got))
	}
}

func TestIncludedColumnRoundTrip(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 500; i++ {
		e := Entry{Key: int64(i), Seq: uint32(i), Included: uint32(i * 3)}
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	err := tr.Scan(nil, nil, func(e Entry) error {
		if e.Included != uint32(i*3) {
			t.Fatalf("entry %d included = %d, want %d", i, e.Included, i*3)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bulk load preserves Included too.
	entries := make([]Entry, 300)
	for j := range entries {
		entries[j] = Entry{Key: int64(j), Included: uint32(j + 7)}
	}
	bl := newTree(t)
	if err := bl.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	j := 0
	bl.Scan(nil, nil, func(e Entry) error {
		if e.Included != uint32(j+7) {
			t.Fatalf("bulk entry %d included = %d", j, e.Included)
		}
		j++
		return nil
	})
}

func TestReadNodeDetectsCorruption(t *testing.T) {
	store := storage.NewMemStore()
	tr, err := Create(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tr.Insert(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite the root with a heap page: scans must fail loudly, not
	// misinterpret.
	rootID := tr.root
	if err := store.WritePage(rootID, storage.NewPage(rootID, storage.PageKindHeap)); err != nil {
		t.Fatal(err)
	}
	err = tr.Scan(nil, nil, func(Entry) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("scan over corrupted root err = %v, want ErrCorrupt", err)
	}
	if err := tr.Check(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Check over corrupted root err = %v, want ErrCorrupt", err)
	}
}

func TestReadNodeDetectsBadEntrySize(t *testing.T) {
	store := storage.NewMemStore()
	tr, err := Create(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(entryFor(1)); err != nil {
		t.Fatal(err)
	}
	// Rebuild the root leaf with a malformed entry record.
	p := storage.NewPage(tr.root, storage.PageKindBTreeLeaf)
	hdr := make([]byte, 6)
	if _, err := p.Insert(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert([]byte{1, 2, 3}); err != nil { // wrong size
		t.Fatal(err)
	}
	if err := store.WritePage(tr.root, p); err != nil {
		t.Fatal(err)
	}
	err = tr.Scan(nil, nil, func(Entry) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("scan over bad entry err = %v, want ErrCorrupt", err)
	}
}

func TestCheckDetectsCountDrift(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 10; i++ {
		if err := tr.Insert(entryFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.count = 99 // simulate a meta/page divergence
	if err := tr.Check(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Check with drifted count err = %v, want ErrCorrupt", err)
	}
}
