// Package btree implements a disk-oriented B+-tree index over the storage
// layer: entries map a composite key (column value, insertion sequence) to a
// record identifier (RID).
//
// The composite key matters for fidelity to the paper: within one column
// value, RIDs are kept in insertion order, NOT sorted by page ("indexes with
// sorted RIDs for a given key value" is explicitly listed as future work in
// the paper). The page-reference trace of an index scan therefore reflects
// whatever placement the table builder produced, which is exactly what the
// clustering experiments manipulate.
//
// The tree supports bulk loading from sorted entries (the fast path used by
// the data generators), single-entry insertion with node splits, lazy
// deletion, point lookup, and ordered range scans with inclusive or exclusive
// start and stop conditions — the paper's "starting and stopping conditions"
// on the index's major column.
//
// Node pages reuse the slotted-page format: slot 0 of every node is a small
// node-header record (level, next-leaf pointer, entry count is implicit);
// the remaining slots hold entries in key order. Modifying a node rewrites
// its page image; this favors simplicity over write amplification, which is
// irrelevant to the estimation experiments.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"epfis/internal/storage"
)

// Entry is one index entry. Key is the major column (the paper's column a,
// carrying the starting/stopping conditions); Included is a minor column
// value stored in the entry (the paper's column b, the target of
// index-sargable predicates, which are "applied to the index column values
// inspected during the (partial) index scan" — i.e. BEFORE the record is
// fetched).
type Entry struct {
	Key      int64
	Seq      uint32
	Included uint32
	RID      storage.RID
}

// Compare orders entries by (Key, Seq).
func (e Entry) Compare(o Entry) int {
	switch {
	case e.Key < o.Key:
		return -1
	case e.Key > o.Key:
		return 1
	case e.Seq < o.Seq:
		return -1
	case e.Seq > o.Seq:
		return 1
	default:
		return 0
	}
}

// Bound is an endpoint of a range scan on the index's key column.
type Bound struct {
	Key int64
	// Inclusive selects >= / <= rather than > / <.
	Inclusive bool
}

// Ge returns an inclusive lower bound (key >= v).
func Ge(v int64) *Bound { return &Bound{Key: v, Inclusive: true} }

// Gt returns an exclusive lower bound (key > v).
func Gt(v int64) *Bound { return &Bound{Key: v} }

// Le returns an inclusive upper bound (key <= v).
func Le(v int64) *Bound { return &Bound{Key: v, Inclusive: true} }

// Lt returns an exclusive upper bound (key < v).
func Lt(v int64) *Bound { return &Bound{Key: v} }

// Errors returned by this package.
var (
	ErrNotEmpty   = errors.New("btree: tree is not empty")
	ErrCorrupt    = errors.New("btree: corrupt node")
	ErrUnsorted   = errors.New("btree: bulk load input not sorted")
	ErrDupEntry   = errors.New("btree: duplicate (key, seq) entry")
	ErrNoMetaPage = errors.New("btree: meta page does not describe a btree")
)

const (
	leafEntrySize     = 8 + 4 + 4 + 4 + 2 // key, seq, included, page, slot
	internalEntrySize = 8 + 4 + 4         // separator key, seq, child page
	nodeHeaderSize    = 2 + 4             // level, next-leaf
	metaMagic         = 0xEB7EE5
)

// BTree is a B+-tree bound to a page store.
type BTree struct {
	store  storage.PageStore
	meta   storage.PageID
	root   storage.PageID
	height int   // number of levels; 1 = root is a leaf
	count  int64 // live entries
}

// Create allocates a new empty tree (meta page + empty root leaf).
func Create(store storage.PageStore) (*BTree, error) {
	meta, err := store.Allocate()
	if err != nil {
		return nil, fmt.Errorf("btree: allocate meta: %w", err)
	}
	root, err := store.Allocate()
	if err != nil {
		return nil, fmt.Errorf("btree: allocate root: %w", err)
	}
	t := &BTree{store: store, meta: meta, root: root, height: 1}
	if err := t.writeNode(root, &node{level: 0, next: storage.InvalidPageID}); err != nil {
		return nil, err
	}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads a tree from its meta page.
func Open(store storage.PageStore, meta storage.PageID) (*BTree, error) {
	var p storage.Page
	if err := store.ReadPage(meta, &p); err != nil {
		return nil, fmt.Errorf("btree: read meta: %w", err)
	}
	if p.Kind() != storage.PageKindMeta || p.NumSlots() < 1 {
		return nil, ErrNoMetaPage
	}
	raw, err := p.Record(0)
	if err != nil || len(raw) != 4+4+2+8 {
		return nil, fmt.Errorf("%w: bad meta record", ErrNoMetaPage)
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != metaMagic {
		return nil, ErrNoMetaPage
	}
	return &BTree{
		store:  store,
		meta:   meta,
		root:   storage.PageID(binary.LittleEndian.Uint32(raw[4:8])),
		height: int(binary.LittleEndian.Uint16(raw[8:10])),
		count:  int64(binary.LittleEndian.Uint64(raw[10:18])),
	}, nil
}

func (t *BTree) writeMeta() error {
	p := storage.NewPage(t.meta, storage.PageKindMeta)
	raw := make([]byte, 4+4+2+8)
	binary.LittleEndian.PutUint32(raw[0:4], metaMagic)
	binary.LittleEndian.PutUint32(raw[4:8], uint32(t.root))
	binary.LittleEndian.PutUint16(raw[8:10], uint16(t.height))
	binary.LittleEndian.PutUint64(raw[10:18], uint64(t.count))
	if _, err := p.Insert(raw); err != nil {
		return fmt.Errorf("btree: write meta: %w", err)
	}
	if err := t.store.WritePage(t.meta, p); err != nil {
		return fmt.Errorf("btree: write meta: %w", err)
	}
	return nil
}

// MetaPageID returns the page id to pass to Open later.
func (t *BTree) MetaPageID() storage.PageID { return t.meta }

// Height reports the number of levels (1 when the root is a leaf).
func (t *BTree) Height() int { return t.height }

// NumEntries reports the number of live entries.
func (t *BTree) NumEntries() int64 { return t.count }

// node is the in-memory image of one tree node.
type node struct {
	level int // 0 = leaf
	next  storage.PageID
	// Leaf: entries with RIDs. Internal: entries where RID.Page encodes the
	// child page id of the subtree holding keys >= (Key, Seq) of the entry
	// (first entry is the leftmost child with a -inf separator).
	entries []Entry
}

func (n *node) isLeaf() bool { return n.level == 0 }

func (t *BTree) readNode(id storage.PageID) (*node, error) {
	var p storage.Page
	if err := t.store.ReadPage(id, &p); err != nil {
		return nil, fmt.Errorf("btree: read node %d: %w", id, err)
	}
	kind := p.Kind()
	if kind != storage.PageKindBTreeLeaf && kind != storage.PageKindBTreeInternal {
		return nil, fmt.Errorf("%w: page %d has kind %d", ErrCorrupt, id, kind)
	}
	if p.NumSlots() < 1 {
		return nil, fmt.Errorf("%w: page %d has no header record", ErrCorrupt, id)
	}
	hdr, err := p.Record(0)
	if err != nil || len(hdr) != nodeHeaderSize {
		return nil, fmt.Errorf("%w: page %d header", ErrCorrupt, id)
	}
	n := &node{
		level: int(binary.LittleEndian.Uint16(hdr[0:2])),
		next:  storage.PageID(binary.LittleEndian.Uint32(hdr[2:6])),
	}
	if (n.level == 0) != (kind == storage.PageKindBTreeLeaf) {
		return nil, fmt.Errorf("%w: page %d level %d vs kind %d", ErrCorrupt, id, n.level, kind)
	}
	n.entries = make([]Entry, 0, p.NumSlots()-1)
	for s := 1; s < p.NumSlots(); s++ {
		raw, err := p.Record(uint16(s))
		if err != nil {
			return nil, fmt.Errorf("%w: page %d slot %d: %v", ErrCorrupt, id, s, err)
		}
		e, err := decodeEntry(raw, n.isLeaf())
		if err != nil {
			return nil, fmt.Errorf("%w: page %d slot %d: %v", ErrCorrupt, id, s, err)
		}
		n.entries = append(n.entries, e)
	}
	return n, nil
}

func (t *BTree) writeNode(id storage.PageID, n *node) error {
	kind := storage.PageKindBTreeLeaf
	if !n.isLeaf() {
		kind = storage.PageKindBTreeInternal
	}
	p := storage.NewPage(id, kind)
	hdr := make([]byte, nodeHeaderSize)
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(n.level))
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(n.next))
	if _, err := p.Insert(hdr); err != nil {
		return fmt.Errorf("btree: write node %d: %w", id, err)
	}
	for _, e := range n.entries {
		if _, err := p.Insert(encodeEntry(e, n.isLeaf())); err != nil {
			return fmt.Errorf("btree: write node %d: %w", id, err)
		}
	}
	if err := t.store.WritePage(id, p); err != nil {
		return fmt.Errorf("btree: write node %d: %w", id, err)
	}
	return nil
}

func encodeEntry(e Entry, leaf bool) []byte {
	if leaf {
		b := make([]byte, leafEntrySize)
		binary.LittleEndian.PutUint64(b[0:8], uint64(e.Key))
		binary.LittleEndian.PutUint32(b[8:12], e.Seq)
		binary.LittleEndian.PutUint32(b[12:16], e.Included)
		binary.LittleEndian.PutUint32(b[16:20], uint32(e.RID.Page))
		binary.LittleEndian.PutUint16(b[20:22], e.RID.Slot)
		return b
	}
	b := make([]byte, internalEntrySize)
	binary.LittleEndian.PutUint64(b[0:8], uint64(e.Key))
	binary.LittleEndian.PutUint32(b[8:12], e.Seq)
	binary.LittleEndian.PutUint32(b[12:16], uint32(e.RID.Page))
	return b
}

func decodeEntry(raw []byte, leaf bool) (Entry, error) {
	if leaf {
		if len(raw) != leafEntrySize {
			return Entry{}, fmt.Errorf("leaf entry is %d bytes", len(raw))
		}
		return Entry{
			Key:      int64(binary.LittleEndian.Uint64(raw[0:8])),
			Seq:      binary.LittleEndian.Uint32(raw[8:12]),
			Included: binary.LittleEndian.Uint32(raw[12:16]),
			RID: storage.RID{
				Page: storage.PageID(binary.LittleEndian.Uint32(raw[16:20])),
				Slot: binary.LittleEndian.Uint16(raw[20:22]),
			},
		}, nil
	}
	if len(raw) != internalEntrySize {
		return Entry{}, fmt.Errorf("internal entry is %d bytes", len(raw))
	}
	return Entry{
		Key: int64(binary.LittleEndian.Uint64(raw[0:8])),
		Seq: binary.LittleEndian.Uint32(raw[8:12]),
		RID: storage.RID{Page: storage.PageID(binary.LittleEndian.Uint32(raw[12:16]))},
	}, nil
}

// Fan-out limits derived from the page capacity. Computed once.
var (
	maxLeafEntries     = nodeCapacity(leafEntrySize)
	maxInternalEntries = nodeCapacity(internalEntrySize)
)

func nodeCapacity(entrySize int) int {
	// Header record consumes nodeHeaderSize + one slot entry; each entry
	// consumes entrySize + one slot entry. Leave one entry of slack so a
	// node can temporarily hold its overflow before splitting.
	usable := storage.PageSize - 16 /* page header */ - (nodeHeaderSize + 4)
	return usable/(entrySize+4) - 1
}

// child returns the index within an internal node of the subtree covering e.
func (n *node) childIndex(key int64, seq uint32) int {
	// entries[i] holds the separator: subtree i covers keys >= entries[i]
	// and < entries[i+1]; entries[0] is the leftmost (-inf) child.
	lo, hi := 1, len(n.entries)
	probe := Entry{Key: key, Seq: seq}
	for lo < hi {
		mid := (lo + hi) / 2
		if n.entries[mid].Compare(probe) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// lowerBound returns the index of the first entry >= probe in a leaf.
func (n *node) lowerBound(probe Entry) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.entries[mid].Compare(probe) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds a single entry, splitting nodes as needed.
// Inserting an entry with an existing (Key, Seq) fails with ErrDupEntry.
func (t *BTree) Insert(e Entry) error {
	sep, newChild, err := t.insertInto(t.root, e, t.height-1)
	if err != nil {
		return err
	}
	if newChild != storage.InvalidPageID {
		// Root split: grow the tree.
		newRoot, err := t.store.Allocate()
		if err != nil {
			return fmt.Errorf("btree: allocate root: %w", err)
		}
		rn := &node{
			level: t.height,
			next:  storage.InvalidPageID,
			entries: []Entry{
				{Key: minInt64, RID: storage.RID{Page: t.root}},
				{Key: sep.Key, Seq: sep.Seq, RID: storage.RID{Page: newChild}},
			},
		}
		if err := t.writeNode(newRoot, rn); err != nil {
			return err
		}
		t.root = newRoot
		t.height++
	}
	t.count++
	return t.writeMeta()
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// insertInto inserts e under node id at the given level. On split it returns
// the separator entry and the new right sibling's page id.
func (t *BTree) insertInto(id storage.PageID, e Entry, level int) (Entry, storage.PageID, error) {
	n, err := t.readNode(id)
	if err != nil {
		return Entry{}, storage.InvalidPageID, err
	}
	if n.level != level {
		return Entry{}, storage.InvalidPageID, fmt.Errorf("%w: page %d level %d, want %d", ErrCorrupt, id, n.level, level)
	}
	if n.isLeaf() {
		i := n.lowerBound(e)
		if i < len(n.entries) && n.entries[i].Compare(e) == 0 {
			return Entry{}, storage.InvalidPageID, fmt.Errorf("%w: key=%d seq=%d", ErrDupEntry, e.Key, e.Seq)
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		return t.maybeSplit(id, n, maxLeafEntries)
	}
	ci := n.childIndex(e.Key, e.Seq)
	sep, newChild, err := t.insertInto(n.entries[ci].RID.Page, e, level-1)
	if err != nil {
		return Entry{}, storage.InvalidPageID, err
	}
	if newChild == storage.InvalidPageID {
		return Entry{}, storage.InvalidPageID, nil
	}
	ins := Entry{Key: sep.Key, Seq: sep.Seq, RID: storage.RID{Page: newChild}}
	n.entries = append(n.entries, Entry{})
	copy(n.entries[ci+2:], n.entries[ci+1:])
	n.entries[ci+1] = ins
	return t.maybeSplit(id, n, maxInternalEntries)
}

// maybeSplit writes n back, splitting first if it exceeds capacity.
func (t *BTree) maybeSplit(id storage.PageID, n *node, capacity int) (Entry, storage.PageID, error) {
	if len(n.entries) <= capacity {
		return Entry{}, storage.InvalidPageID, t.writeNode(id, n)
	}
	mid := len(n.entries) / 2
	rightID, err := t.store.Allocate()
	if err != nil {
		return Entry{}, storage.InvalidPageID, fmt.Errorf("btree: allocate split: %w", err)
	}
	right := &node{level: n.level, next: n.next}
	right.entries = append(right.entries, n.entries[mid:]...)
	sep := right.entries[0]
	n.entries = n.entries[:mid]
	if n.isLeaf() {
		n.next = rightID
	} else {
		right.next = storage.InvalidPageID
	}
	if err := t.writeNode(rightID, right); err != nil {
		return Entry{}, storage.InvalidPageID, err
	}
	if err := t.writeNode(id, n); err != nil {
		return Entry{}, storage.InvalidPageID, err
	}
	return sep, rightID, nil
}

// BulkLoad builds the tree from entries sorted ascending by (Key, Seq).
// The tree must be empty. This is the fast path used by the data generators.
func (t *BTree) BulkLoad(entries []Entry) error {
	if t.count != 0 {
		return ErrNotEmpty
	}
	for i := 1; i < len(entries); i++ {
		c := entries[i-1].Compare(entries[i])
		if c > 0 {
			return fmt.Errorf("%w: index %d", ErrUnsorted, i)
		}
		if c == 0 {
			return fmt.Errorf("%w: key=%d seq=%d", ErrDupEntry, entries[i].Key, entries[i].Seq)
		}
	}
	if len(entries) == 0 {
		return nil
	}
	// Build leaves at ~90% fill.
	fill := maxLeafEntries * 9 / 10
	if fill < 1 {
		fill = 1
	}
	type levelNode struct {
		id  storage.PageID
		sep Entry // minimal entry of the subtree
	}
	var level []levelNode
	// Reuse the pre-allocated empty root as the first leaf.
	for start := 0; start < len(entries); start += fill {
		end := start + fill
		if end > len(entries) {
			end = len(entries)
		}
		var id storage.PageID
		if start == 0 {
			id = t.root
		} else {
			var err error
			if id, err = t.store.Allocate(); err != nil {
				return fmt.Errorf("btree: bulk load allocate: %w", err)
			}
			// Link previous leaf to this one.
			prev := level[len(level)-1]
			pn, err := t.readNode(prev.id)
			if err != nil {
				return err
			}
			pn.next = id
			if err := t.writeNode(prev.id, pn); err != nil {
				return err
			}
		}
		n := &node{level: 0, next: storage.InvalidPageID, entries: entries[start:end]}
		if err := t.writeNode(id, n); err != nil {
			return err
		}
		level = append(level, levelNode{id: id, sep: entries[start]})
	}
	// Build internal levels until a single root remains.
	height := 1
	ifill := maxInternalEntries * 9 / 10
	if ifill < 2 {
		ifill = 2
	}
	for len(level) > 1 {
		var up []levelNode
		for start := 0; start < len(level); start += ifill {
			end := start + ifill
			if end > len(level) {
				end = len(level)
			}
			// Avoid an orphan single-child node at the tail.
			if end == len(level)-1 {
				end = len(level)
			}
			id, err := t.store.Allocate()
			if err != nil {
				return fmt.Errorf("btree: bulk load allocate: %w", err)
			}
			n := &node{level: height, next: storage.InvalidPageID}
			for i := start; i < end; i++ {
				sep := level[i].sep
				if i == start {
					sep = Entry{Key: minInt64}
				}
				n.entries = append(n.entries, Entry{Key: sep.Key, Seq: sep.Seq, RID: storage.RID{Page: level[i].id}})
			}
			if err := t.writeNode(id, n); err != nil {
				return err
			}
			up = append(up, levelNode{id: id, sep: level[start].sep})
			if end == len(level) {
				break
			}
		}
		level = up
		height++
	}
	t.root = level[0].id
	t.height = height
	t.count = int64(len(entries))
	return t.writeMeta()
}

// Delete removes the entry with the given (key, seq). It reports whether an
// entry was removed. Underfull nodes are not rebalanced (lazy deletion);
// separators remain valid because they are lower bounds, not stored keys.
func (t *BTree) Delete(key int64, seq uint32) (bool, error) {
	id := t.root
	for lvl := t.height - 1; lvl > 0; lvl-- {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		id = n.entries[n.childIndex(key, seq)].RID.Page
	}
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	probe := Entry{Key: key, Seq: seq}
	i := n.lowerBound(probe)
	if i >= len(n.entries) || n.entries[i].Compare(probe) != 0 {
		return false, nil
	}
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	if err := t.writeNode(id, n); err != nil {
		return false, err
	}
	t.count--
	return true, t.writeMeta()
}

// Lookup returns the RIDs of all entries with the given key, in seq order.
func (t *BTree) Lookup(key int64) ([]storage.RID, error) {
	var rids []storage.RID
	err := t.Scan(Ge(key), Le(key), func(e Entry) error {
		rids = append(rids, e.RID)
		return nil
	})
	return rids, err
}

// Scan visits entries in (key, seq) order, restricted by the optional start
// (lower) and stop (upper) bounds. fn returning ErrStopScan halts early
// without error.
func (t *BTree) Scan(start, stop *Bound, fn func(Entry) error) error {
	it, err := t.Iterator(start, stop)
	if err != nil {
		return err
	}
	for {
		e, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(e); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
	}
}

// ErrStopScan halts a Scan early without reporting an error.
var ErrStopScan = errors.New("btree: stop scan")

// Iterator streams entries in order within the given bounds. A nil start
// begins at the first entry; a nil stop runs to the end.
func (t *BTree) Iterator(start, stop *Bound) (*Iterator, error) {
	probe := Entry{Key: minInt64}
	if start != nil {
		if start.Inclusive {
			probe = Entry{Key: start.Key, Seq: 0}
		} else {
			if start.Key == maxInt64 {
				// key > MaxInt64 selects nothing.
				return &Iterator{done: true}, nil
			}
			probe = Entry{Key: start.Key + 1, Seq: 0}
		}
	}
	id := t.root
	for lvl := t.height - 1; lvl > 0; lvl-- {
		n, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		id = n.entries[n.childIndex(probe.Key, probe.Seq)].RID.Page
	}
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	it := &Iterator{tree: t, node: n, pos: n.lowerBound(probe), stop: stop}
	return it, nil
}

// Iterator is a forward scan cursor over index entries.
type Iterator struct {
	tree *BTree
	node *node
	pos  int
	stop *Bound
	done bool
}

// Next returns the next entry. ok is false when the scan is exhausted.
func (it *Iterator) Next() (Entry, bool, error) {
	if it.done {
		return Entry{}, false, nil
	}
	for it.pos >= len(it.node.entries) {
		if it.node.next == storage.InvalidPageID {
			it.done = true
			return Entry{}, false, nil
		}
		n, err := it.tree.readNode(it.node.next)
		if err != nil {
			return Entry{}, false, err
		}
		it.node, it.pos = n, 0
	}
	e := it.node.entries[it.pos]
	if it.stop != nil {
		if e.Key > it.stop.Key || (e.Key == it.stop.Key && !it.stop.Inclusive) {
			it.done = true
			return Entry{}, false, nil
		}
	}
	it.pos++
	return e, true, nil
}

// Check walks the whole tree verifying structural invariants: level
// consistency, in-node ordering, separator bounds, leaf chain order, and the
// entry count. It returns the first violation found.
func (t *BTree) Check() error {
	seen := int64(0)
	var prev *Entry
	err := t.checkNode(t.root, t.height-1, nil, nil, &seen, &prev)
	if err != nil {
		return err
	}
	if seen != t.count {
		return fmt.Errorf("%w: counted %d entries, meta says %d", ErrCorrupt, seen, t.count)
	}
	return nil
}

func (t *BTree) checkNode(id storage.PageID, level int, lo, hi *Entry, seen *int64, prev **Entry) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level != level {
		return fmt.Errorf("%w: page %d level %d, want %d", ErrCorrupt, id, n.level, level)
	}
	for i := 1; i < len(n.entries); i++ {
		if n.entries[i-1].Compare(n.entries[i]) >= 0 {
			return fmt.Errorf("%w: page %d entries out of order at %d", ErrCorrupt, id, i)
		}
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if lo != nil && e.Compare(*lo) < 0 {
				return fmt.Errorf("%w: page %d entry below separator", ErrCorrupt, id)
			}
			if hi != nil && e.Compare(*hi) >= 0 {
				return fmt.Errorf("%w: page %d entry above separator", ErrCorrupt, id)
			}
			if *prev != nil && (*prev).Compare(e) >= 0 {
				return fmt.Errorf("%w: leaf chain out of global order at page %d", ErrCorrupt, id)
			}
			ecopy := e
			*prev = &ecopy
			*seen++
		}
		return nil
	}
	if len(n.entries) == 0 {
		return fmt.Errorf("%w: empty internal node %d", ErrCorrupt, id)
	}
	for i, e := range n.entries {
		var childLo *Entry
		if i == 0 {
			childLo = lo
		} else {
			ec := Entry{Key: e.Key, Seq: e.Seq}
			childLo = &ec
		}
		var childHi *Entry
		if i+1 < len(n.entries) {
			nxt := Entry{Key: n.entries[i+1].Key, Seq: n.entries[i+1].Seq}
			childHi = &nxt
		} else {
			childHi = hi
		}
		if err := t.checkNode(e.RID.Page, level-1, childLo, childHi, seen, prev); err != nil {
			return err
		}
	}
	return nil
}
