// Package buffer implements buffer pools over a storage.PageStore.
//
// The LRU pool is the reference implementation of the replacement policy the
// paper assumes ("as in most relational database systems, the buffer pool is
// assumed to be managed using the least recently used (LRU) algorithm").
// Every miss that reaches the underlying store is counted as a page fetch;
// those counts are the "actual" values a_i in the paper's error metric.
//
// A Clock (second-chance) pool is provided for ablation experiments: it shows
// how sensitive EPFIS's LRU-derived model is when the deployed policy is only
// approximately LRU.
package buffer

import (
	"errors"
	"fmt"

	"epfis/internal/storage"
)

// Stats accumulates buffer pool accounting.
type Stats struct {
	// Fetches is the number of physical page reads from the store (misses).
	Fetches int64
	// Hits is the number of logical reads satisfied from the pool.
	Hits int64
	// Evictions is the number of frames reclaimed to make room.
	Evictions int64
}

// Accesses reports the number of logical page reads observed.
func (s Stats) Accesses() int64 { return s.Fetches + s.Hits }

// HitRatio reports Hits / Accesses, or 0 when no accesses happened.
func (s Stats) HitRatio() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Hits) / float64(a)
	}
	return 0
}

// Pool is the page-access interface scans use. Get returns the page image
// for id, fetching from the store on a miss and recording hit/miss counts.
type Pool interface {
	// Get returns the pooled page for id. The returned page is owned by the
	// pool; callers must not retain it across further Get calls.
	Get(id storage.PageID) (*storage.Page, error)
	// Stats returns a snapshot of the accounting counters.
	Stats() Stats
	// Reset clears the pool contents and counters.
	Reset()
	// Size reports the number of frames.
	Size() int
}

// Errors returned by this package.
var (
	// ErrBadPoolSize reports a non-positive buffer pool size.
	ErrBadPoolSize = errors.New("buffer: pool size must be >= 1")
	// ErrAllPinned reports that a fetch needed an eviction but every frame
	// is pinned.
	ErrAllPinned = errors.New("buffer: all frames pinned")
	// ErrNotResident reports a pin/unpin on a page that is not in the pool.
	ErrNotResident = errors.New("buffer: page not resident")
)

type lruFrame struct {
	id         storage.PageID
	page       storage.Page
	pins       int
	prev, next *lruFrame
}

// LRU is a strict least-recently-used buffer pool. Get moves the frame to the
// MRU end; eviction removes the LRU end. It is intentionally unsynchronized:
// scans in this system are single-threaded per pool, matching the paper's
// single-user setting (multi-user contention is listed as future work).
type LRU struct {
	store  storage.PageStore
	size   int
	frames map[storage.PageID]*lruFrame
	head   *lruFrame // MRU
	tail   *lruFrame // LRU
	stats  Stats
}

// NewLRU creates an LRU pool with the given number of frames over the store.
func NewLRU(store storage.PageStore, size int) (*LRU, error) {
	if size < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadPoolSize, size)
	}
	return &LRU{
		store:  store,
		size:   size,
		frames: make(map[storage.PageID]*lruFrame, size),
	}, nil
}

// Size implements Pool.
func (p *LRU) Size() int { return p.size }

// Stats implements Pool.
func (p *LRU) Stats() Stats { return p.stats }

// Reset implements Pool.
func (p *LRU) Reset() {
	p.frames = make(map[storage.PageID]*lruFrame, p.size)
	p.head, p.tail = nil, nil
	p.stats = Stats{}
}

// Get implements Pool.
func (p *LRU) Get(id storage.PageID) (*storage.Page, error) {
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		p.moveToFront(f)
		return &f.page, nil
	}
	if len(p.frames) >= p.size && !p.canEvict() {
		return nil, fmt.Errorf("%w: cannot fetch page %d", ErrAllPinned, id)
	}
	p.stats.Fetches++
	f := &lruFrame{id: id}
	if err := p.store.ReadPage(id, &f.page); err != nil {
		p.stats.Fetches-- // failed read is not a fetch
		return nil, err
	}
	if len(p.frames) >= p.size {
		p.evict()
	}
	p.frames[id] = f
	p.pushFront(f)
	return &f.page, nil
}

// Pin marks the resident page un-evictable until a matching Unpin. Pins
// nest: each Pin requires one Unpin.
func (p *LRU) Pin(id storage.PageID) error {
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrNotResident, id)
	}
	f.pins++
	return nil
}

// Unpin releases one pin on the page.
func (p *LRU) Unpin(id storage.PageID) error {
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrNotResident, id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: page %d is not pinned", id)
	}
	f.pins--
	return nil
}

// PinnedCount reports the number of frames with at least one pin.
func (p *LRU) PinnedCount() int {
	n := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

func (p *LRU) canEvict() bool {
	for f := p.tail; f != nil; f = f.prev {
		if f.pins == 0 {
			return true
		}
	}
	return false
}

// Contains reports whether the page is currently resident, without touching
// recency or counters. Used by tests and invariant checks.
func (p *LRU) Contains(id storage.PageID) bool {
	_, ok := p.frames[id]
	return ok
}

// ResidentOrder returns the resident page ids from MRU to LRU. Used by tests
// to verify the stack property against the simulator in internal/lrusim.
func (p *LRU) ResidentOrder() []storage.PageID {
	ids := make([]storage.PageID, 0, len(p.frames))
	for f := p.head; f != nil; f = f.next {
		ids = append(ids, f.id)
	}
	return ids
}

func (p *LRU) pushFront(f *lruFrame) {
	f.prev = nil
	f.next = p.head
	if p.head != nil {
		p.head.prev = f
	}
	p.head = f
	if p.tail == nil {
		p.tail = f
	}
}

func (p *LRU) unlink(f *lruFrame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		p.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		p.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (p *LRU) moveToFront(f *lruFrame) {
	if p.head == f {
		return
	}
	p.unlink(f)
	p.pushFront(f)
}

func (p *LRU) evict() {
	// Evict the least recently used UNPINNED frame.
	victim := p.tail
	for victim != nil && victim.pins > 0 {
		victim = victim.prev
	}
	if victim == nil {
		return
	}
	p.unlink(victim)
	delete(p.frames, victim.id)
	p.stats.Evictions++
}

type clockFrame struct {
	id       storage.PageID
	page     storage.Page
	refbit   bool
	occupied bool
}

// Clock is a second-chance (clock) buffer pool: an LRU approximation commonly
// used in real systems. Provided for the policy-sensitivity ablation.
type Clock struct {
	store  storage.PageStore
	frames []clockFrame
	index  map[storage.PageID]int
	hand   int
	stats  Stats
}

// NewClock creates a clock pool with the given number of frames.
func NewClock(store storage.PageStore, size int) (*Clock, error) {
	if size < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadPoolSize, size)
	}
	return &Clock{
		store:  store,
		frames: make([]clockFrame, size),
		index:  make(map[storage.PageID]int, size),
	}, nil
}

// Size implements Pool.
func (p *Clock) Size() int { return len(p.frames) }

// Stats implements Pool.
func (p *Clock) Stats() Stats { return p.stats }

// Reset implements Pool.
func (p *Clock) Reset() {
	for i := range p.frames {
		p.frames[i] = clockFrame{}
	}
	p.index = make(map[storage.PageID]int, len(p.frames))
	p.hand = 0
	p.stats = Stats{}
}

// Get implements Pool.
func (p *Clock) Get(id storage.PageID) (*storage.Page, error) {
	if i, ok := p.index[id]; ok {
		p.stats.Hits++
		p.frames[i].refbit = true
		return &p.frames[i].page, nil
	}
	var pg storage.Page
	if err := p.store.ReadPage(id, &pg); err != nil {
		return nil, err
	}
	p.stats.Fetches++
	i := p.findVictim()
	if p.frames[i].occupied {
		delete(p.index, p.frames[i].id)
		p.stats.Evictions++
	}
	p.frames[i] = clockFrame{id: id, page: pg, refbit: true, occupied: true}
	p.index[id] = i
	return &p.frames[i].page, nil
}

func (p *Clock) findVictim() int {
	for {
		f := &p.frames[p.hand]
		i := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		if !f.occupied {
			return i
		}
		if !f.refbit {
			return i
		}
		f.refbit = false
	}
}
