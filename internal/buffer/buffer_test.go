package buffer

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"epfis/internal/storage"
)

// makeStore allocates n sealed heap pages, each carrying one record naming
// its page id, and returns the store.
func makeStore(t testing.TB, n int) *storage.MemStore {
	t.Helper()
	store := storage.NewMemStore()
	for i := 0; i < n; i++ {
		id, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p := storage.NewPage(id, storage.PageKindHeap)
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := store.WritePage(id, p); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func TestNewPoolSizeValidation(t *testing.T) {
	store := makeStore(t, 1)
	if _, err := NewLRU(store, 0); !errors.Is(err, ErrBadPoolSize) {
		t.Errorf("NewLRU(0) err = %v", err)
	}
	if _, err := NewClock(store, -3); !errors.Is(err, ErrBadPoolSize) {
		t.Errorf("NewClock(-3) err = %v", err)
	}
}

func TestLRUColdMissesThenHits(t *testing.T) {
	store := makeStore(t, 5)
	p, err := NewLRU(store, 5)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			if _, err := p.Get(storage.PageID(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := p.Stats()
	if st.Fetches != 5 {
		t.Errorf("Fetches = %d, want 5 (cold misses only)", st.Fetches)
	}
	if st.Hits != 10 {
		t.Errorf("Hits = %d, want 10", st.Hits)
	}
	if st.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0", st.Evictions)
	}
	if got := st.HitRatio(); got != 10.0/15.0 {
		t.Errorf("HitRatio = %v", got)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	store := makeStore(t, 4)
	p, err := NewLRU(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustGet := func(id storage.PageID) {
		t.Helper()
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(0)
	mustGet(1)
	mustGet(2)
	mustGet(0) // 0 becomes MRU; LRU order now 0,2,1
	mustGet(3) // must evict 1
	if p.Contains(1) {
		t.Error("page 1 resident, should have been evicted")
	}
	for _, id := range []storage.PageID{0, 2, 3} {
		if !p.Contains(id) {
			t.Errorf("page %d not resident", id)
		}
	}
	want := []storage.PageID{3, 0, 2}
	got := p.ResidentOrder()
	if len(got) != len(want) {
		t.Fatalf("ResidentOrder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ResidentOrder = %v, want %v", got, want)
		}
	}
}

func TestLRUSequentialScanFetchesEveryPage(t *testing.T) {
	// A table scan fetches exactly T pages regardless of buffer size (paper §2).
	const T = 50
	store := makeStore(t, T)
	for _, size := range []int{1, 7, T, 2 * T} {
		p, err := NewLRU(store, size)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < T; i++ {
			if _, err := p.Get(storage.PageID(i)); err != nil {
				t.Fatal(err)
			}
		}
		if got := p.Stats().Fetches; got != T {
			t.Errorf("size %d: table scan fetches = %d, want %d", size, got, T)
		}
	}
}

func TestLRUGetMissingPage(t *testing.T) {
	store := makeStore(t, 1)
	p, err := NewLRU(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(7); err == nil {
		t.Error("Get(7) succeeded, want error")
	}
	if st := p.Stats(); st.Fetches != 0 {
		t.Errorf("failed read counted as fetch: %+v", st)
	}
}

func TestLRUReset(t *testing.T) {
	store := makeStore(t, 3)
	p, err := NewLRU(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Get(storage.PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Reset()
	if st := p.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v", st)
	}
	if len(p.ResidentOrder()) != 0 {
		t.Error("pages resident after reset")
	}
}

func TestLRUReturnsCorrectPageContents(t *testing.T) {
	store := makeStore(t, 10)
	p, err := NewLRU(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		id := storage.PageID(rng.Intn(10))
		pg, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := pg.Record(0)
		if err != nil {
			t.Fatal(err)
		}
		if rec[0] != byte(id) {
			t.Fatalf("page %d returned record %d", id, rec[0])
		}
	}
}

// The LRU inclusion (stack) property: a pool of size s+1 always contains
// every page a pool of size s contains, for any access sequence. This is the
// property the Mattson one-pass simulation in internal/lrusim relies on.
func TestLRUInclusionProperty(t *testing.T) {
	const nPages = 12
	store := makeStore(t, nPages)
	f := func(refs []uint8) bool {
		pools := make([]*LRU, 0, 4)
		for _, s := range []int{1, 2, 5, 9} {
			p, err := NewLRU(store, s)
			if err != nil {
				return false
			}
			pools = append(pools, p)
		}
		for _, r := range refs {
			id := storage.PageID(int(r) % nPages)
			for _, p := range pools {
				if _, err := p.Get(id); err != nil {
					return false
				}
			}
		}
		for i := 0; i+1 < len(pools); i++ {
			small, big := pools[i], pools[i+1]
			for _, id := range small.ResidentOrder() {
				if !big.Contains(id) {
					return false
				}
			}
			// Larger pools never fetch more.
			if big.Stats().Fetches > small.Stats().Fetches {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClockBasics(t *testing.T) {
	store := makeStore(t, 6)
	p, err := NewClock(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		pg, err := p.Get(storage.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := pg.Record(0)
		if err != nil {
			t.Fatal(err)
		}
		if rec[0] != byte(i) {
			t.Fatalf("page %d returned record %d", i, rec[0])
		}
	}
	st := p.Stats()
	if st.Fetches != 6 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 6 fetches 0 hits", st)
	}
	if st.Evictions != 3 {
		t.Errorf("Evictions = %d, want 3", st.Evictions)
	}
	// Re-access the resident tail: hits.
	pre := p.Stats().Hits
	for i := 3; i < 6; i++ {
		if _, err := p.Get(storage.PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Stats().Hits - pre; got != 3 {
		t.Errorf("hits on resident pages = %d, want 3", got)
	}
}

func TestClockApproximatesLRUOnSequentialCycles(t *testing.T) {
	// Cycling through size+1 pages defeats both policies identically:
	// every access misses.
	const nPages = 4
	store := makeStore(t, nPages)
	lru, err := NewLRU(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	clk, err := NewClock(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < nPages; i++ {
			if _, err := lru.Get(storage.PageID(i)); err != nil {
				t.Fatal(err)
			}
			if _, err := clk.Get(storage.PageID(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if l, c := lru.Stats().Fetches, clk.Stats().Fetches; l != c || l != 20 {
		t.Errorf("cycle fetches: lru=%d clock=%d, want 20 each", l, c)
	}
}

func TestClockReset(t *testing.T) {
	store := makeStore(t, 3)
	p, err := NewClock(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Get(storage.PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.Reset()
	if st := p.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v", st)
	}
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Fetches != 1 || st.Hits != 0 {
		t.Errorf("post-reset stats = %+v", st)
	}
}

func TestClockGetMissingPage(t *testing.T) {
	store := makeStore(t, 1)
	p, err := NewClock(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(9); err == nil {
		t.Error("Get(9) succeeded, want error")
	}
}

func TestStatsAccessors(t *testing.T) {
	var s Stats
	if s.Accesses() != 0 || s.HitRatio() != 0 {
		t.Error("zero stats accessors wrong")
	}
	s = Stats{Fetches: 1, Hits: 3}
	if s.Accesses() != 4 || s.HitRatio() != 0.75 {
		t.Errorf("accessors: %d %v", s.Accesses(), s.HitRatio())
	}
}

func TestLRUPinningPreventsEviction(t *testing.T) {
	store := makeStore(t, 4)
	p, err := NewLRU(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(1); err != nil {
		t.Fatal(err)
	}
	// Page 0 is LRU but pinned; fetching 2 must evict 1 instead.
	if _, err := p.Get(2); err != nil {
		t.Fatal(err)
	}
	if !p.Contains(0) {
		t.Error("pinned page evicted")
	}
	if p.Contains(1) {
		t.Error("unpinned page survived over pinned LRU")
	}
	if got := p.PinnedCount(); got != 1 {
		t.Errorf("PinnedCount = %d", got)
	}
	if err := p.Unpin(0); err != nil {
		t.Fatal(err)
	}
	// Now 0 is evictable again.
	if _, err := p.Get(3); err != nil {
		t.Fatal(err)
	}
	if p.Contains(0) {
		t.Error("page 0 survived after unpin (it was LRU)")
	}
}

func TestLRUAllPinned(t *testing.T) {
	store := makeStore(t, 3)
	p, err := NewLRU(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := p.Get(storage.PageID(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.Pin(storage.PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Get(2); !errors.Is(err, ErrAllPinned) {
		t.Errorf("Get with all pinned err = %v", err)
	}
	// A failed fetch must not count.
	if st := p.Stats(); st.Fetches != 2 {
		t.Errorf("Fetches = %d", st.Fetches)
	}
	// Hits on pinned pages still work.
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
}

func TestLRUPinErrors(t *testing.T) {
	store := makeStore(t, 2)
	p, err := NewLRU(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(0); !errors.Is(err, ErrNotResident) {
		t.Errorf("Pin(non-resident) err = %v", err)
	}
	if err := p.Unpin(0); !errors.Is(err, ErrNotResident) {
		t.Errorf("Unpin(non-resident) err = %v", err)
	}
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(0); err == nil {
		t.Error("Unpin of unpinned page succeeded")
	}
	// Nested pins require matching unpins.
	if err := p.Pin(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(0); err != nil {
		t.Fatal(err)
	}
	if p.PinnedCount() != 1 {
		t.Error("nested pin released too early")
	}
	if err := p.Unpin(0); err != nil {
		t.Fatal(err)
	}
	if p.PinnedCount() != 0 {
		t.Error("pin count wrong after full release")
	}
}
