package lrusim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"epfis/internal/buffer"
	"epfis/internal/storage"
)

func tr(ids ...int) Trace {
	t := make(Trace, len(ids))
	for i, id := range ids {
		t[i] = storage.PageID(id)
	}
	return t
}

func randomTrace(rng *rand.Rand, n, pages int) Trace {
	t := make(Trace, n)
	for i := range t {
		t[i] = storage.PageID(rng.Intn(pages))
	}
	return t
}

// clusteredTrace mimics an index scan over a partly clustered table: page
// numbers drift forward with local jitter, producing re-references at small
// stack distances.
func clusteredTrace(rng *rand.Rand, n, pages, jitter int) Trace {
	t := make(Trace, n)
	for i := range t {
		base := i * pages / n
		p := base + rng.Intn(2*jitter+1) - jitter
		if p < 0 {
			p = 0
		}
		if p >= pages {
			p = pages - 1
		}
		t[i] = storage.PageID(p)
	}
	return t
}

func simulators() map[string]Simulator {
	return map[string]Simulator{"list": ListSimulator{}, "tree": TreeSimulator{}}
}

func TestEmptyTrace(t *testing.T) {
	for name, sim := range simulators() {
		h := sim.Run(nil)
		if h.Cold != 0 || h.Total != 0 {
			t.Errorf("%s: empty trace histogram = %+v", name, h)
		}
		c := h.FetchCurve()
		if c.Fetches(1) != 0 || c.Fetches(100) != 0 {
			t.Errorf("%s: empty trace fetches != 0", name)
		}
	}
}

func TestSingleReference(t *testing.T) {
	for name, sim := range simulators() {
		c := sim.Run(tr(5)).FetchCurve()
		if c.Fetches(1) != 1 || c.Accesses() != 1 || c.Total() != 1 {
			t.Errorf("%s: single ref curve wrong", name)
		}
	}
}

func TestRepeatedSamePage(t *testing.T) {
	for name, sim := range simulators() {
		c := sim.Run(tr(3, 3, 3, 3)).FetchCurve()
		if got := c.Fetches(1); got != 1 {
			t.Errorf("%s: F(1) = %d, want 1", name, got)
		}
	}
}

func TestKnownStackDistances(t *testing.T) {
	// Trace: 1 2 3 1 2 3.
	// Second occurrences each have stack distance 3.
	for name, sim := range simulators() {
		h := sim.Run(tr(1, 2, 3, 1, 2, 3))
		if h.Cold != 3 {
			t.Errorf("%s: cold = %d, want 3", name, h.Cold)
		}
		if len(h.Counts) <= 3 || h.Counts[3] != 3 {
			t.Errorf("%s: counts = %v, want three at distance 3", name, h.Counts)
		}
		c := h.FetchCurve()
		// B=3 caches everything: 3 fetches. B=2: all re-refs miss: 6.
		if got := c.Fetches(3); got != 3 {
			t.Errorf("%s: F(3) = %d, want 3", name, got)
		}
		if got := c.Fetches(2); got != 6 {
			t.Errorf("%s: F(2) = %d, want 6", name, got)
		}
	}
}

func TestSequentialScanIndependentOfBuffer(t *testing.T) {
	// Paper §2: a clustered scan has F == A for every B.
	trace := make(Trace, 0, 300)
	for p := 0; p < 100; p++ {
		for r := 0; r < 3; r++ {
			trace = append(trace, storage.PageID(p))
		}
	}
	for name, sim := range simulators() {
		c := sim.Run(trace).FetchCurve()
		for _, b := range []int{1, 2, 10, 100, 1000} {
			if got := c.Fetches(b); got != 100 {
				t.Errorf("%s: clustered scan F(%d) = %d, want 100", name, b, got)
			}
		}
	}
}

func TestWorstCaseUnclustered(t *testing.T) {
	// Each new record on a page evicted long ago: with B=1 every reference
	// after a page switch fetches; interleave 2 pages fully.
	trace := tr(0, 1, 0, 1, 0, 1)
	for name, sim := range simulators() {
		c := sim.Run(trace).FetchCurve()
		if got := c.Fetches(1); got != 6 {
			t.Errorf("%s: F(1) = %d, want 6 (every ref misses)", name, got)
		}
		if got := c.Fetches(2); got != 2 {
			t.Errorf("%s: F(2) = %d, want 2", name, got)
		}
	}
}

func TestSimulatorsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		pages := 1 + rng.Intn(40)
		var trace Trace
		if rng.Intn(2) == 0 {
			trace = randomTrace(rng, n, pages)
		} else {
			trace = clusteredTrace(rng, n, pages, 1+rng.Intn(5))
		}
		ha := ListSimulator{}.Run(trace)
		hb := TreeSimulator{}.Run(trace)
		if ha.Cold != hb.Cold || ha.Total != hb.Total {
			return false
		}
		ca, cb := ha.FetchCurve(), hb.FetchCurve()
		for b := 1; b <= pages+2; b++ {
			if ca.Fetches(b) != cb.Fetches(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStackCurveMatchesDirectSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		pages := 5 + rng.Intn(60)
		trace := clusteredTrace(rng, 400, pages, 1+rng.Intn(8))
		c := Analyze(trace)
		for _, b := range []int{1, 2, 3, 5, pages / 2, pages, pages + 10} {
			if b < 1 {
				b = 1
			}
			direct, err := DirectFetches(trace, b)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Fetches(b); got != direct {
				t.Fatalf("trial %d: F(%d) = %d via stack, %d via direct", trial, b, got, direct)
			}
		}
	}
}

func TestStackCurveMatchesRealBufferPool(t *testing.T) {
	// End-to-end cross-check against the actual LRU buffer pool in
	// internal/buffer: the counts must agree exactly.
	rng := rand.New(rand.NewSource(7))
	const pages = 30
	store := storage.NewMemStore()
	for i := 0; i < pages; i++ {
		id, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := store.WritePage(id, storage.NewPage(id, storage.PageKindHeap)); err != nil {
			t.Fatal(err)
		}
	}
	trace := clusteredTrace(rng, 600, pages, 4)
	c := Analyze(trace)
	for _, b := range []int{1, 3, 7, 15, 30} {
		pool, err := buffer.NewLRU(store, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, pg := range trace {
			if _, err := pool.Get(pg); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := pool.Stats().Fetches, c.Fetches(b); got != want {
			t.Errorf("B=%d: real pool fetched %d, stack curve says %d", b, got, want)
		}
	}
}

func TestFetchCurveMonotoneNonIncreasing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := randomTrace(rng, 300, 1+rng.Intn(50))
		c := Analyze(trace)
		prev := c.Fetches(1)
		for b := 2; b < 60; b++ {
			cur := c.Fetches(b)
			if cur > prev {
				return false
			}
			prev = cur
		}
		// Bounds: A <= F(B) <= Total.
		return prev >= c.Accesses() && c.Fetches(1) <= c.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMinBufferForFullCaching(t *testing.T) {
	// 1 2 3 1 2 3 needs exactly 3 frames for full caching.
	c := Analyze(tr(1, 2, 3, 1, 2, 3))
	if got := c.MinBufferForFullCaching(); got != 3 {
		t.Errorf("MinBufferForFullCaching = %d, want 3", got)
	}
	// A sequential scan needs only 1.
	c = Analyze(tr(1, 1, 2, 2, 3, 3))
	if got := c.MinBufferForFullCaching(); got != 1 {
		t.Errorf("sequential MinBufferForFullCaching = %d, want 1", got)
	}
}

func TestDirectFetchesValidation(t *testing.T) {
	if _, err := DirectFetches(tr(1), 0); err == nil {
		t.Error("DirectFetches with B=0 succeeded")
	}
}

func TestTraceHelpers(t *testing.T) {
	trace := tr(1, 2, 2, 3)
	if got := trace.DistinctPages(); got != 3 {
		t.Errorf("DistinctPages = %d, want 3", got)
	}
	cl := trace.Clone()
	cl[0] = 9
	if trace[0] != 1 {
		t.Error("Clone aliases original")
	}
}

func TestSampleCurve(t *testing.T) {
	c := Analyze(tr(1, 2, 3, 1, 2, 3))
	pts := SampleCurve(c, []int{5, 1, 3, 3, -2})
	// -2 clamps to 1 which duplicates 1; expect B = 1, 3, 5.
	if len(pts) != 3 || pts[0].B != 1 || pts[1].B != 3 || pts[2].B != 5 {
		t.Fatalf("SampleCurve points = %+v", pts)
	}
	if pts[0].F != 6 || pts[1].F != 3 {
		t.Errorf("SampleCurve values = %+v", pts)
	}
}

func TestFetchesClampsSmallB(t *testing.T) {
	c := Analyze(tr(1, 2, 1, 2))
	if c.Fetches(0) != c.Fetches(1) || c.Fetches(-5) != c.Fetches(1) {
		t.Error("Fetches should clamp B < 1 to 1")
	}
}

func BenchmarkTreeSimulator(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	trace := clusteredTrace(rng, 100_000, 2_000, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TreeSimulator{}.Run(trace)
	}
}

func BenchmarkListSimulator(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	trace := clusteredTrace(rng, 20_000, 500, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ListSimulator{}.Run(trace)
	}
}

func TestClockFetchesValidation(t *testing.T) {
	if _, err := ClockFetches(tr(1), 0); err == nil {
		t.Error("ClockFetches with B=0 succeeded")
	}
}

func TestClockFetchesSequentialEqualsLRU(t *testing.T) {
	// On a sequential (clustered) trace every policy performs identically:
	// compulsory misses only.
	trace := tr(0, 0, 1, 1, 2, 2, 3, 3)
	for _, b := range []int{1, 2, 5} {
		got, err := ClockFetches(trace, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != 4 {
			t.Errorf("B=%d: clock fetches = %d, want 4", b, got)
		}
	}
}

func TestClockFetchesMatchesRealClockPool(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const pages = 20
	store := storage.NewMemStore()
	for i := 0; i < pages; i++ {
		id, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := store.WritePage(id, storage.NewPage(id, storage.PageKindHeap)); err != nil {
			t.Fatal(err)
		}
	}
	trace := clusteredTrace(rng, 500, pages, 5)
	for _, b := range []int{1, 3, 8, 20} {
		pool, err := buffer.NewClock(store, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, pg := range trace {
			if _, err := pool.Get(pg); err != nil {
				t.Fatal(err)
			}
		}
		sim, err := ClockFetches(trace, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := pool.Stats().Fetches; got != sim {
			t.Errorf("B=%d: real clock pool fetched %d, simulator says %d", b, got, sim)
		}
	}
}

func TestClockBetweenLRUBounds(t *testing.T) {
	// Clock is an LRU approximation: its fetch count should be bounded
	// below by cold misses and above by the trace length, and typically
	// close to LRU's.
	rng := rand.New(rand.NewSource(9))
	trace := clusteredTrace(rng, 2000, 100, 10)
	curve := Analyze(trace)
	for _, b := range []int{5, 20, 50, 100} {
		clock, err := ClockFetches(trace, b)
		if err != nil {
			t.Fatal(err)
		}
		if clock < curve.Accesses() || clock > curve.Total() {
			t.Errorf("B=%d: clock fetches %d outside [%d, %d]", b, clock, curve.Accesses(), curve.Total())
		}
	}
}
