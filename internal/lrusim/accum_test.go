package lrusim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"epfis/internal/storage"
)

// feedInSplits feeds the trace through a into randomly sized batches,
// exercising shrinking and growing batch lengths including empty ones.
func feedInSplits(rng *rand.Rand, a *Accum, t Trace) {
	for len(t) > 0 {
		k := rng.Intn(len(t) + 1)
		if rng.Intn(8) == 0 {
			a.Feed(nil) // empty batches must be no-ops
		}
		a.Feed(t[:k])
		t = t[k:]
	}
}

// accumMatchesScratch checks the accumulated state against a fresh offline
// pass over the full trace, bit for bit: identical histogram, identical
// F(B) for every informative B, identical A and N.
func accumMatchesScratch(t *testing.T, a *Accum, full Trace) {
	t.Helper()
	s := NewScratch()
	want := s.Run(full)
	if got := a.Histogram(); !histogramsEqual(got, want) {
		t.Fatalf("histogram diverged: got cold=%d total=%d, want cold=%d total=%d",
			got.Cold, got.Total, want.Cold, want.Total)
	}
	wc := s.Analyze(full)
	gc := a.Curve()
	hi := int(wc.Accesses()) + 2
	for b := 1; b <= hi; b++ {
		if gc.Fetches(b) != wc.Fetches(b) {
			t.Fatalf("F(%d): accum %d, scratch %d", b, gc.Fetches(b), wc.Fetches(b))
		}
	}
	if gc.Accesses() != wc.Accesses() || gc.Total() != wc.Total() {
		t.Fatalf("A/N diverged: accum (%d,%d), scratch (%d,%d)",
			gc.Accesses(), gc.Total(), wc.Accesses(), wc.Total())
	}
}

// sparseTrace spreads page ids far beyond the trace length so the accumulator
// must take (or migrate to) the map remap path.
func sparseTrace(rng *rand.Rand, n, pages int) Trace {
	t := make(Trace, n)
	for i := range t {
		t[i] = storage.PageID(rng.Intn(pages)) * 1_048_573 // large prime stride
	}
	return t
}

func pickTrace(rng *rand.Rand, n, pages int) Trace {
	switch rng.Intn(3) {
	case 0:
		return randomTrace(rng, n, pages)
	case 1:
		return clusteredTrace(rng, n, pages, 1+rng.Intn(6))
	default:
		return sparseTrace(rng, n, pages)
	}
}

func TestAccumFeedMatchesScratchProperty(t *testing.T) {
	// One trace, arbitrary batch splits: the incremental pass must be
	// bit-identical to the offline pass over the concatenation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		full := pickTrace(rng, 1+rng.Intn(600), 1+rng.Intn(60))
		a := NewAccum()
		feedInSplits(rng, a, full)
		s := NewScratch()
		return histogramsEqual(a.Histogram(), s.Run(full))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAccumMergeMatchesConcatenationProperty(t *testing.T) {
	// Per-shard accumulators merged in order must be bit-identical to one
	// accumulator over the concatenated stream — across dense, clustered,
	// and sparse id shapes, with page-id overlap between shards.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := 1 + rng.Intn(5)
		pages := 1 + rng.Intn(50)
		var full Trace
		accs := make([]*Accum, shards)
		for i := range accs {
			part := pickTrace(rng, rng.Intn(300), pages)
			full = append(full, part...)
			accs[i] = NewAccum()
			feedInSplits(rng, accs[i], part)
		}
		merged := accs[0]
		for _, b := range accs[1:] {
			merged.Merge(b)
		}
		s := NewScratch()
		return histogramsEqual(merged.Histogram(), s.Run(full))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAccumMergeThenKeepFeeding(t *testing.T) {
	// A merged accumulator must remain a valid stream prefix: further Feeds
	// and further Merges on top of it stay exact.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p1 := pickTrace(rng, 200, 30)
		p2 := pickTrace(rng, 150, 30)
		p3 := pickTrace(rng, 100, 30)
		a, b := NewAccum(), NewAccum()
		a.Feed(p1)
		b.Feed(p2)
		a.Merge(b)
		a.Feed(p3)          // feeding after a merge must stay exact
		a.Merge(NewAccum()) // merging an empty accumulator is a no-op
		concat := append(append(p1.Clone(), p2...), p3...)
		accumMatchesScratch(t, a, concat)
	}
}

func TestAccumMixedRemapMerge(t *testing.T) {
	// Slice-path accumulator merged with map-path accumulator (and the
	// reverse), including ids present on both sides.
	dense := tr(0, 1, 2, 3, 0, 1, 2, 3, 2, 1)
	sparse := Trace{1 << 30, 1, 1 << 30, 1 << 20, 3, 1 << 20}
	for _, order := range [][2]Trace{{dense, sparse}, {sparse, dense}} {
		a, b := NewAccum(), NewAccum()
		a.Feed(order[0])
		b.Feed(order[1])
		a.Merge(b)
		concat := append(order[0].Clone(), order[1]...)
		accumMatchesScratch(t, a, concat)
	}
}

func TestAccumCurveMidStream(t *testing.T) {
	// Curve() at every batch boundary must equal the offline pass over the
	// prefix consumed so far, and reading it must not disturb accumulation.
	rng := rand.New(rand.NewSource(3))
	full := clusteredTrace(rng, 1200, 80, 4)
	a := NewAccum()
	s := NewScratch()
	for off := 0; off < len(full); {
		k := 1 + rng.Intn(200)
		if off+k > len(full) {
			k = len(full) - off
		}
		a.Feed(full[off : off+k])
		off += k
		want := s.Analyze(full[:off])
		got := a.Curve()
		for b := 1; b <= 90; b++ {
			if got.Fetches(b) != want.Fetches(b) {
				t.Fatalf("prefix %d F(%d): accum %d, scratch %d", off, b, got.Fetches(b), want.Fetches(b))
			}
		}
	}
}

func TestAccumResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewAccum()
	for _, n := range []int{1000, 3, 700, 1, 1200} {
		a.Reset()
		full := pickTrace(rng, n, 1+n/10)
		feedInSplits(rng, a, full)
		accumMatchesScratch(t, a, full)
	}
}

func TestAccumEmptyAndEdge(t *testing.T) {
	a := NewAccum()
	if c := a.Curve(); c.Total() != 0 || c.Fetches(1) != 0 {
		t.Error("empty accumulator curve wrong")
	}
	a.Feed(tr(5))
	if c := a.Curve(); c.Fetches(1) != 1 || c.Accesses() != 1 {
		t.Error("single-reference curve wrong")
	}
	if got := a.MaxPageID(); got != 5 {
		t.Errorf("MaxPageID = %d, want 5", got)
	}
	b := NewAccum()
	b.Merge(a) // merge into empty
	accumMatchesScratch(t, b, tr(5))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("self-merge did not panic")
			}
		}()
		b.Merge(b)
	}()
}

func TestAccumConcurrentShards(t *testing.T) {
	// Shard feeding from separate goroutines (one Accum each, as the ingest
	// pipeline does) then a serial merge: exercised under -race by make race.
	rng := rand.New(rand.NewSource(17))
	shards := make([]Trace, 8)
	var full Trace
	for i := range shards {
		shards[i] = clusteredTrace(rng, 500, 60, 3)
	}
	for _, sh := range shards {
		full = append(full, sh...)
	}
	accs := make([]*Accum, len(shards))
	done := make(chan int, len(shards))
	for i := range shards {
		go func(i int) {
			accs[i] = NewAccum()
			r := rand.New(rand.NewSource(int64(i)))
			feedInSplits(r, accs[i], shards[i])
			done <- i
		}(i)
	}
	for range shards {
		<-done
	}
	merged := accs[0]
	for _, b := range accs[1:] {
		merged.Merge(b)
	}
	accumMatchesScratch(t, merged, full)
}

func TestAccumFeedSteadyStateAllocs(t *testing.T) {
	// Amortized allocs/op over a long warm stream: the committed budget is
	// <= 2 (matching Scratch.Analyze); steady state is zero with occasional
	// capacity doublings.
	rng := rand.New(rand.NewSource(2))
	a := NewAccum()
	a.Feed(clusteredTrace(rng, 50_000, 2_000, 10)) // warm up capacities
	batch := clusteredTrace(rng, 512, 2_000, 10)
	avg := testing.AllocsPerRun(100, func() { a.Feed(batch) })
	if avg > 2 {
		t.Errorf("Feed allocs/op = %.1f, want <= 2", avg)
	}
}

// BenchmarkAccumFeed measures the incremental path per 512-reference batch on
// the same clustered shape as BenchmarkScratchAnalyze; divide ns/op by 512
// for ns/ref.
func BenchmarkAccumFeed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	batch := clusteredTrace(rng, 512, 2_000, 40)
	a := NewAccum()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Total() > 4<<20 {
			b.StopTimer()
			a.Reset()
			b.StartTimer()
		}
		a.Feed(batch)
	}
}

// BenchmarkAccumMerge measures merging a 100k-reference shard into a
// 100k-reference base (fresh copies per iteration, timer paused for setup).
func BenchmarkAccumMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t1 := clusteredTrace(rng, 100_000, 2_000, 40)
	t2 := clusteredTrace(rng, 100_000, 2_000, 40)
	shard := NewAccum()
	shard.Feed(t2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		base := NewAccum()
		base.Feed(t1)
		b.StartTimer()
		base.Merge(shard)
	}
}
