// Package lrusim implements single-pass LRU buffer-pool simulation over page
// reference traces using the stack property of LRU (Mattson et al., 1970),
// exactly as Subprogram LRU-Fit in the paper prescribes:
//
//	"the stack property of the LRU algorithm is used to do the simulation
//	 using a [single stack]. A sequential scan of the buffer pool is avoided
//	 by using hash tables of buffer pages."
//
// One pass over the trace yields the page-fetch count F(B) for EVERY buffer
// size B simultaneously: each reference's LRU stack distance d is recorded in
// a histogram; a reference is a hit in a pool of size B if and only if d <= B,
// so F(B) = cold misses + #\{references with d > B\}.
//
// Two stack-distance implementations are provided with identical output:
//
//   - ListSimulator: the textbook move-to-front list, O(n * avg depth). This
//     mirrors the paper's description most literally (hash table avoids the
//     scan for membership, the list walk yields the distance).
//   - TreeSimulator: a Fenwick tree over reference positions, O(n log n).
//     The stack distance equals the number of distinct pages referenced since
//     the page's previous reference, which is a prefix-sum query.
//
// Property tests in this package check the two against each other and against
// the real LRU buffer pool in internal/buffer.
package lrusim

import (
	"errors"
	"fmt"
	"sort"

	"epfis/internal/storage"
)

// Trace is a sequence of data-page references, in the order an index scan
// touches them (one entry per index entry, i.e. per record fetched).
type Trace []storage.PageID

// Clone returns an independent copy of the trace.
func (t Trace) Clone() Trace {
	return append(Trace(nil), t...)
}

// DistinctPages reports the number of distinct pages in the trace — the
// paper's A, the number of pages accessed by the scan.
func (t Trace) DistinctPages() int {
	seen := make(map[storage.PageID]struct{}, 256)
	for _, p := range t {
		seen[p] = struct{}{}
	}
	return len(seen)
}

// Histogram is the stack-distance histogram of a trace. Distances are
// 1-based: a reference at distance d hits in any LRU pool with >= d frames.
// Cold (first-ever) references have infinite distance and are counted
// separately.
type Histogram struct {
	// Counts[d] is the number of references with stack distance d;
	// Counts[0] is unused and always zero.
	Counts []int64
	// Cold is the number of first references (compulsory misses). It equals
	// the number of distinct pages accessed (the paper's A).
	Cold int64
	// Total is the number of references in the trace (for a full index scan,
	// the paper's N).
	Total int64
}

// FetchCurve converts the histogram into a constant-time F(B) lookup.
func (h *Histogram) FetchCurve() *FetchCurve {
	cum := make([]int64, len(h.Counts))
	var run int64
	for d := 1; d < len(h.Counts); d++ {
		run += h.Counts[d]
		cum[d] = run
	}
	return &FetchCurve{cumHits: cum, cold: h.Cold, total: h.Total}
}

// FetchCurve answers "how many page fetches would an LRU pool of B frames
// perform on this trace" for any B, in O(1) after the one-time pass.
// This is the paper's FPF (full-index-scan page fetch) function when the
// trace covers the whole index.
type FetchCurve struct {
	cumHits []int64 // cumHits[d] = hits in a pool of size d
	cold    int64
	total   int64
}

// Fetches returns F(B), the number of page fetches with an LRU pool of
// bufferSize frames. bufferSize < 1 is treated as 1 — a scan always has at
// least the frame it is reading into (and F(0) is undefined for LRU).
func (c *FetchCurve) Fetches(bufferSize int) int64 {
	if bufferSize < 1 {
		bufferSize = 1
	}
	if bufferSize >= len(c.cumHits) {
		if len(c.cumHits) == 0 {
			return c.cold
		}
		return c.total - c.cumHits[len(c.cumHits)-1]
	}
	return c.total - c.cumHits[bufferSize]
}

// Accesses reports the paper's A: the number of distinct pages accessed.
// Every fetch count satisfies A <= F(B) <= Total.
func (c *FetchCurve) Accesses() int64 { return c.cold }

// Total reports the number of references in the trace.
func (c *FetchCurve) Total() int64 { return c.total }

// MinBufferForFullCaching returns the smallest buffer size at which the scan
// incurs only compulsory misses (F(B) == A).
func (c *FetchCurve) MinBufferForFullCaching() int {
	// F is non-increasing in B; binary search the first B with F(B) == cold.
	lo, hi := 1, len(c.cumHits)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Fetches(mid) == c.cold {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Simulator computes a stack-distance histogram from a trace.
type Simulator interface {
	// Run consumes the trace and returns its histogram.
	Run(t Trace) *Histogram
}

// ListSimulator implements Simulator with a move-to-front doubly linked list
// plus a hash index (the paper's literal construction).
type ListSimulator struct{}

type listNode struct {
	page       storage.PageID
	prev, next *listNode
}

// Run implements Simulator.
func (ListSimulator) Run(t Trace) *Histogram {
	h := &Histogram{Total: int64(len(t))}
	index := make(map[storage.PageID]*listNode, 1024)
	var head *listNode
	maxDepth := 0
	counts := make([]int64, 1, 1024)
	for _, pg := range t {
		if node, ok := index[pg]; ok {
			// Walk from the head to find the node's depth (1-based).
			d := 1
			for cur := head; cur != node; cur = cur.next {
				d++
			}
			for len(counts) <= d {
				counts = append(counts, 0)
			}
			counts[d]++
			if d > maxDepth {
				maxDepth = d
			}
			// Move to front.
			if head != node {
				if node.prev != nil {
					node.prev.next = node.next
				}
				if node.next != nil {
					node.next.prev = node.prev
				}
				node.prev = nil
				node.next = head
				if head != nil {
					head.prev = node
				}
				head = node
			}
		} else {
			h.Cold++
			node := &listNode{page: pg, next: head}
			if head != nil {
				head.prev = node
			}
			head = node
			index[pg] = node
		}
	}
	h.Counts = counts
	return h
}

// TreeSimulator implements Simulator with a Fenwick (binary indexed) tree
// over reference positions: stack distance = 1 + number of distinct pages
// referenced strictly between a page's previous reference and now, which is a
// range sum over "is this position some page's most recent reference".
type TreeSimulator struct{}

// Run implements Simulator.
func (TreeSimulator) Run(t Trace) *Histogram {
	n := len(t)
	h := &Histogram{Total: int64(n)}
	bit := newFenwick(n + 1)
	lastPos := make(map[storage.PageID]int, 1024)
	counts := make([]int64, 1, 1024)
	for i, pg := range t {
		if prev, ok := lastPos[pg]; ok {
			// Distinct pages referenced in (prev, i): most-recent-reference
			// markers strictly after prev. The page itself still has its
			// marker at prev, so the count excludes it; distance is count+1.
			d := bit.rangeSum(prev+1, i-1) + 1
			for len(counts) <= d {
				counts = append(counts, 0)
			}
			counts[d]++
			bit.add(prev+1, -1) // marker moves from prev to i (1-based BIT)
		} else {
			h.Cold++
		}
		lastPos[pg] = i
		bit.add(i+1, +1)
	}
	h.Counts = counts
	return h
}

// fenwick is a 1-based Fenwick tree of ints.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

func (f *fenwick) prefixSum(i int) int {
	s := 0
	if i >= len(f.tree) {
		i = len(f.tree) - 1
	}
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum sums positions lo..hi inclusive, in 0-based trace coordinates.
func (f *fenwick) rangeSum(lo, hi int) int {
	if hi < lo {
		return 0
	}
	return f.prefixSum(hi+1) - f.prefixSum(lo)
}

// Analyze computes the trace's fetch curve with the default simulator. It is
// a thin wrapper over the pooled Scratch path, so one-off callers get the
// allocation-lean simulation without managing a Scratch themselves; loops
// that analyze many traces should hold their own Scratch per goroutine.
func Analyze(t Trace) *FetchCurve {
	return AnalyzePooled(t)
}

// DirectFetches simulates a single LRU pool of the given size over the trace
// (no stack trick) and returns the fetch count. It exists as an independent
// oracle for tests and for one-off measurements.
func DirectFetches(t Trace, bufferSize int) (int64, error) {
	if bufferSize < 1 {
		return 0, fmt.Errorf("lrusim: buffer size must be >= 1, got %d", bufferSize)
	}
	type node struct {
		page       storage.PageID
		prev, next *node
	}
	index := make(map[storage.PageID]*node, bufferSize)
	var head, tail *node
	var fetches int64
	unlink := func(n *node) {
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			head = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			tail = n.prev
		}
		n.prev, n.next = nil, nil
	}
	pushFront := func(n *node) {
		n.next = head
		if head != nil {
			head.prev = n
		}
		head = n
		if tail == nil {
			tail = n
		}
	}
	for _, pg := range t {
		if n, ok := index[pg]; ok {
			if head != n {
				unlink(n)
				pushFront(n)
			}
			continue
		}
		fetches++
		if len(index) >= bufferSize {
			victim := tail
			unlink(victim)
			delete(index, victim.page)
		}
		n := &node{page: pg}
		index[pg] = n
		pushFront(n)
	}
	return fetches, nil
}

// ErrEmptyTrace reports an operation that needs a non-empty trace.
var ErrEmptyTrace = errors.New("lrusim: empty trace")

// SampleCurve evaluates the fetch curve at each buffer size in sizes and
// returns (B, F(B)) pairs sorted by B. Duplicate sizes are collapsed.
func SampleCurve(c *FetchCurve, sizes []int) []Point {
	uniq := make(map[int]struct{}, len(sizes))
	out := make([]Point, 0, len(sizes))
	for _, b := range sizes {
		if b < 1 {
			b = 1
		}
		if _, dup := uniq[b]; dup {
			continue
		}
		uniq[b] = struct{}{}
		out = append(out, Point{B: b, F: c.Fetches(b)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].B < out[j].B })
	return out
}

// Point is one sampled point of an FPF curve.
type Point struct {
	B int   // buffer size in pages
	F int64 // page fetches at that size
}

// ClockFetches simulates a clock (second-chance) buffer pool of the given
// size over the trace and returns the fetch count. Clock has no stack
// property, so unlike LRU there is no one-pass-all-sizes trick; this direct
// simulator supports the policy-sensitivity study (how well EPFIS's
// LRU-derived model predicts a clock-managed pool, the common LRU
// approximation in real systems).
func ClockFetches(t Trace, bufferSize int) (int64, error) {
	if bufferSize < 1 {
		return 0, fmt.Errorf("lrusim: buffer size must be >= 1, got %d", bufferSize)
	}
	type frame struct {
		page     storage.PageID
		ref      bool
		occupied bool
	}
	frames := make([]frame, bufferSize)
	index := make(map[storage.PageID]int, bufferSize)
	hand := 0
	var fetches int64
	for _, pg := range t {
		if i, ok := index[pg]; ok {
			frames[i].ref = true
			continue
		}
		fetches++
		for {
			f := &frames[hand]
			i := hand
			hand = (hand + 1) % bufferSize
			if !f.occupied {
				frames[i] = frame{page: pg, ref: true, occupied: true}
				index[pg] = i
				break
			}
			if !f.ref {
				delete(index, f.page)
				frames[i] = frame{page: pg, ref: true, occupied: true}
				index[pg] = i
				break
			}
			f.ref = false
		}
	}
	return fetches, nil
}
