package lrusim

import (
	"sync"

	"epfis/internal/storage"
)

// Scratch is a reusable Mattson stack simulator. It produces exactly the
// histograms and fetch curves of TreeSimulator, but keeps every working
// structure — the Fenwick array, the per-page last-position table, the
// page-id remap, and the stack-distance counts — between runs, so repeated
// analyses (the 200 scans per error sweep, the calibration bisection, the
// modeling pass per figure) allocate only the result they return instead of
// three large structures per trace.
//
// Two further optimizations over TreeSimulator:
//
//   - Page ids are remapped to dense small ints on first sight, so the
//     last-position table is a flat slice indexed by dense id rather than a
//     hash map. When the raw ids are already compact (every trace produced
//     by datagen numbers pages 0..T-1) the remap itself is a flat slice with
//     epoch stamps — O(1) reset, no hashing at all; sparse ids fall back to
//     one reused map.
//   - The histogram is accumulated in a reused buffer and converted straight
//     into the cumulative FetchCurve form, skipping the intermediate
//     Histogram allocation on the Curve path.
//
// A Scratch is not safe for concurrent use; give each goroutine its own
// (workload.Measure does), or go through Analyze, which draws from an
// internal pool.
type Scratch struct {
	fen     []int32 // Fenwick tree over trace positions, 1-based
	lastPos []int32 // dense page id -> position of its most recent reference
	counts  []int64 // counts[d] = references at stack distance d
	maxDist int     // high-water mark of counts actually touched

	// Dense remap, slice path: denseOf[raw] is valid iff stamp[raw] == epoch.
	denseOf []int32
	stamp   []uint32
	epoch   uint32

	// Dense remap, map path (raw ids too sparse for the slice).
	remap map[storage.PageID]int32

	// One-shot page-id bound from ResetHint, consumed by the next reset.
	hintMax storage.PageID
	hintSet bool
}

// NewScratch returns an empty reusable simulator.
func NewScratch() *Scratch { return &Scratch{} }

// maxSliceRemapFactor bounds the slice remap: raw ids are kept in a flat
// table only while maxID < factor*len(trace) + slack, so a short trace with
// one huge page id cannot force a giant allocation.
const (
	maxSliceRemapFactor = 4
	maxSliceRemapSlack  = 1024
)

// ResetHint tells the next Run/Analyze call the trace's page-id bound, so
// reset can pick the remap representation without its O(len(trace)) max-id
// scan. maxID must be >= every page id in the next trace (datagen traces
// number pages 0..T-1, so T-1 is exact); an id above the hint panics on the
// slice path, the same way an out-of-range index would. The hint applies to
// exactly one run — it is consumed by the next reset and scanning resumes
// afterwards.
func (s *Scratch) ResetHint(maxID storage.PageID) {
	s.hintMax = maxID
	s.hintSet = true
}

// Run implements Simulator: it consumes the trace and returns a fresh
// Histogram (the counts are copied out of the scratch buffer, so the result
// outlives any further reuse).
func (s *Scratch) Run(t Trace) *Histogram {
	cold := s.pass(t)
	h := &Histogram{Total: int64(len(t)), Cold: cold}
	h.Counts = make([]int64, s.maxDist+1)
	copy(h.Counts, s.counts[:s.maxDist+1])
	return h
}

// Analyze consumes the trace and returns its fetch curve. This is the
// allocation-lean path: the only allocations are the returned FetchCurve and
// its cumulative array (both must escape; everything else is reused).
func (s *Scratch) Analyze(t Trace) *FetchCurve {
	cold := s.pass(t)
	cum := make([]int64, s.maxDist+1)
	var run int64
	for d := 1; d <= s.maxDist; d++ {
		run += s.counts[d]
		cum[d] = run
	}
	return &FetchCurve{cumHits: cum, cold: cold, total: int64(len(t))}
}

// pass runs the one-pass stack simulation, leaving the per-distance counts
// in s.counts[1..s.maxDist] and returning the cold-miss count.
func (s *Scratch) pass(t Trace) int64 {
	n := len(t)
	s.reset(n, t)

	var cold int64
	next := int32(0) // next dense id to assign
	for i, pg := range t {
		id, seen := s.denseID(pg, next)
		if !seen {
			next++
			cold++
			s.lastPos[id] = int32(i)
			s.fenAdd(i+1, 1)
			continue
		}
		prev := int(s.lastPos[id])
		// Distinct pages referenced strictly between prev and i: the
		// most-recent-reference markers after prev, excluding the page's own
		// marker still sitting at prev; distance is that count + 1.
		d := s.fenRange(prev+1, i-1) + 1
		if d > s.maxDist {
			s.maxDist = d
		}
		s.counts[d]++
		s.fenAdd(prev+1, -1)
		s.lastPos[id] = int32(i)
		s.fenAdd(i+1, 1)
	}
	return cold
}

// reset prepares the scratch structures for a trace of length n, growing and
// clearing only what the previous run actually touched.
func (s *Scratch) reset(n int, t Trace) {
	// Fenwick array: positions 1..n (index 0 unused).
	if cap(s.fen) < n+1 {
		s.fen = make([]int32, n+1)
	} else {
		s.fen = s.fen[:n+1]
		for i := range s.fen {
			s.fen[i] = 0
		}
	}
	// Last-position table: at most n distinct pages.
	if cap(s.lastPos) < n {
		s.lastPos = make([]int32, n)
	} else {
		s.lastPos = s.lastPos[:n]
	}
	// Distance counts: zero only the prefix the previous run used.
	if cap(s.counts) < n+1 {
		grown := make([]int64, n+1)
		s.counts = grown
	} else {
		for d := 1; d <= s.maxDist; d++ {
			s.counts[d] = 0
		}
		s.counts = s.counts[:n+1]
	}
	s.maxDist = 0

	// Choose the remap representation from the trace's id range, taking the
	// caller's bound when one was hinted instead of scanning the trace.
	maxID := storage.PageID(0)
	if s.hintSet {
		maxID = s.hintMax
		s.hintSet = false
	} else {
		for _, pg := range t {
			if pg > maxID {
				maxID = pg
			}
		}
	}
	if int64(maxID) < int64(maxSliceRemapFactor)*int64(n)+maxSliceRemapSlack {
		s.remap = nil
		need := int(maxID) + 1
		if cap(s.denseOf) < need {
			s.denseOf = make([]int32, need)
			s.stamp = make([]uint32, need)
			s.epoch = 1
		} else {
			s.denseOf = s.denseOf[:need]
			s.stamp = s.stamp[:need]
			s.epoch++
			if s.epoch == 0 { // wrapped: stamps may alias, hard reset
				for i := range s.stamp {
					s.stamp[i] = 0
				}
				s.epoch = 1
			}
		}
	} else {
		if s.remap == nil {
			s.remap = make(map[storage.PageID]int32, 1024)
		} else {
			clear(s.remap)
		}
	}
}

// denseID maps a raw page id to its dense id, assigning next on first sight.
func (s *Scratch) denseID(pg storage.PageID, next int32) (id int32, seen bool) {
	if s.remap == nil {
		if s.stamp[pg] == s.epoch {
			return s.denseOf[pg], true
		}
		s.stamp[pg] = s.epoch
		s.denseOf[pg] = next
		return next, false
	}
	if id, ok := s.remap[pg]; ok {
		return id, true
	}
	s.remap[pg] = next
	return next, false
}

func (s *Scratch) fenAdd(i int, delta int32) {
	for ; i < len(s.fen); i += i & (-i) {
		s.fen[i] += delta
	}
}

func (s *Scratch) fenPrefix(i int) int {
	sum := 0
	if i >= len(s.fen) {
		i = len(s.fen) - 1
	}
	for ; i > 0; i -= i & (-i) {
		sum += int(s.fen[i])
	}
	return sum
}

// fenRange sums positions lo..hi inclusive, 0-based trace coordinates.
func (s *Scratch) fenRange(lo, hi int) int {
	if hi < lo {
		return 0
	}
	return s.fenPrefix(hi+1) - s.fenPrefix(lo)
}

// scratchPool backs the package-level Analyze so every existing call site
// gets the pooled path without holding a Scratch of its own.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// AnalyzePooled computes the trace's fetch curve using a pooled Scratch.
func AnalyzePooled(t Trace) *FetchCurve {
	s := scratchPool.Get().(*Scratch)
	c := s.Analyze(t)
	scratchPool.Put(s)
	return c
}
