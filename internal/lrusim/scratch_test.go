package lrusim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"epfis/internal/storage"
)

// histogramsEqual compares two histograms up to trailing zero counts.
func histogramsEqual(a, b *Histogram) bool {
	if a.Cold != b.Cold || a.Total != b.Total {
		return false
	}
	n := len(a.Counts)
	if len(b.Counts) > n {
		n = len(b.Counts)
	}
	at := func(h *Histogram, d int) int64 {
		if d < len(h.Counts) {
			return h.Counts[d]
		}
		return 0
	}
	for d := 0; d < n; d++ {
		if at(a, d) != at(b, d) {
			return false
		}
	}
	return true
}

func TestScratchMatchesSimulatorsProperty(t *testing.T) {
	// One Scratch reused across every quick iteration, with trace sizes and
	// page counts varying each time — the reuse-across-sizes regression the
	// pooling must survive.
	s := NewScratch()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(600)
		pages := 1 + rng.Intn(60)
		var trace Trace
		if rng.Intn(2) == 0 {
			trace = randomTrace(rng, n, pages)
		} else {
			trace = clusteredTrace(rng, n, pages, 1+rng.Intn(6))
		}
		hList := ListSimulator{}.Run(trace)
		hTree := TreeSimulator{}.Run(trace)
		hScr := s.Run(trace)
		if !histogramsEqual(hScr, hList) || !histogramsEqual(hScr, hTree) {
			return false
		}
		cScr := s.Analyze(trace)
		cTree := hTree.FetchCurve()
		for b := 1; b <= pages+2; b++ {
			if cScr.Fetches(b) != cTree.Fetches(b) {
				return false
			}
		}
		return cScr.Accesses() == cTree.Accesses() && cScr.Total() == cTree.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestScratchReuseShrinkThenGrow(t *testing.T) {
	// Deterministic worst case for stale state: a large trace, then a tiny
	// one, then large again, with overlapping page ids.
	rng := rand.New(rand.NewSource(5))
	s := NewScratch()
	for _, n := range []int{2000, 3, 1500, 1, 2500} {
		trace := clusteredTrace(rng, n, 1+n/10, 3)
		want := TreeSimulator{}.Run(trace)
		if got := s.Run(trace); !histogramsEqual(got, want) {
			t.Fatalf("n=%d: scratch diverged after reuse", n)
		}
	}
}

func TestScratchSparsePageIDs(t *testing.T) {
	// Page ids far beyond the trace length force the map remap path; mixing
	// sparse and dense traces on one Scratch must switch paths cleanly.
	s := NewScratch()
	sparse := Trace{1 << 30, 7, 1 << 30, 1 << 20, 7, 1 << 20, 1 << 30}
	dense := tr(0, 1, 2, 0, 1, 2)
	for i := 0; i < 3; i++ {
		if got, want := s.Run(sparse), (TreeSimulator{}).Run(sparse); !histogramsEqual(got, want) {
			t.Fatalf("iter %d: sparse trace diverged", i)
		}
		if got, want := s.Run(dense), (TreeSimulator{}).Run(dense); !histogramsEqual(got, want) {
			t.Fatalf("iter %d: dense trace diverged", i)
		}
	}
}

func TestScratchEmptyAndSingle(t *testing.T) {
	s := NewScratch()
	if c := s.Analyze(nil); c.Fetches(1) != 0 || c.Total() != 0 {
		t.Error("empty trace curve wrong")
	}
	if c := s.Analyze(tr(9)); c.Fetches(1) != 1 || c.Accesses() != 1 {
		t.Error("single-reference curve wrong")
	}
}

func TestScratchMatchesDirectSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewScratch()
	for trial := 0; trial < 10; trial++ {
		pages := 5 + rng.Intn(50)
		trace := clusteredTrace(rng, 300, pages, 1+rng.Intn(6))
		c := s.Analyze(trace)
		for _, b := range []int{1, 2, pages / 2, pages + 5} {
			if b < 1 {
				b = 1
			}
			direct, err := DirectFetches(trace, b)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Fetches(b); got != direct {
				t.Fatalf("trial %d B=%d: scratch %d, direct %d", trial, b, got, direct)
			}
		}
	}
}

func TestAnalyzePooledConcurrent(t *testing.T) {
	// The pool hands each goroutine its own Scratch; concurrent Analyze
	// calls must not interfere (run under -race in CI).
	rng := rand.New(rand.NewSource(21))
	traces := make([]Trace, 16)
	wants := make([]*FetchCurve, len(traces))
	for i := range traces {
		traces[i] = clusteredTrace(rng, 400+i*37, 40+i, 4)
		wants[i] = TreeSimulator{}.Run(traces[i]).FetchCurve()
	}
	done := make(chan error, len(traces))
	for i := range traces {
		go func(i int) {
			c := Analyze(traces[i])
			for b := 1; b < 60; b += 7 {
				if c.Fetches(b) != wants[i].Fetches(b) {
					done <- errAt(i, b)
					return
				}
			}
			done <- nil
		}(i)
	}
	for range traces {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type traceMismatch struct{ i, b int }

func (e traceMismatch) Error() string { return "concurrent Analyze mismatch" }

func errAt(i, b int) error { return traceMismatch{i, b} }

// BenchmarkScratchAnalyze measures the pooled path on the same clustered
// trace BenchmarkTreeSimulator uses, so ns/op and allocs/op are directly
// comparable.
func BenchmarkScratchAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	trace := clusteredTrace(rng, 100_000, 2_000, 40)
	s := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Analyze(trace)
	}
}

// BenchmarkTreeAnalyzeLegacy is the pre-pooling path (fresh structures per
// trace), kept as the allocation baseline the perf report compares against.
func BenchmarkTreeAnalyzeLegacy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	trace := clusteredTrace(rng, 100_000, 2_000, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TreeSimulator{}.Run(trace).FetchCurve()
	}
}

var _ Simulator = (*Scratch)(nil)

var _ = storage.PageID(0)
