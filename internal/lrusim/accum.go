package lrusim

import (
	"fmt"
	"math"

	"epfis/internal/storage"
)

// Accum is an incremental, mergeable Mattson stack simulator: the streaming
// counterpart of Scratch. Where Scratch.Analyze consumes a complete trace and
// resets between runs, an Accum consumes the trace in batches — Feed may be
// called any number of times — carrying the Fenwick marker tree, the per-page
// last-position table, and the stack-distance counts across calls, so the
// fetch curve (and everything derived from it: FPF samples, the clustering
// factor) can be read at any point with Curve() without replaying history.
//
// Two Accums can also be combined: a.Merge(b) produces in a the exact state
// of an accumulator that consumed a's stream followed by b's stream. Feed and
// Merge are both bit-identical to Scratch.Analyze over the concatenated
// trace (property-tested in accum_test.go), so per-shard accumulators — one
// per ingest worker, or one per node — roll up into the same curve the
// offline one-shot pass would have produced.
//
// Memory grows with the stream: the Fenwick tree is indexed by reference
// position (one int32 per reference) and the last-position table by distinct
// page. Exact stack-distance accounting needs both — there is no sublinear
// exact form — so long-running pipelines bound an Accum's life (the ingest
// pipeline rotates accumulators past a reference cap) rather than feeding one
// forever. Positions are int32: a single Accum (or merge result) is capped at
// MaxAccumRefs references and Feed/Merge panic beyond it, the same way a
// slice append panics past its address space.
//
// The steady-state Feed path performs zero allocations; growth of the carried
// structures is amortized doubling, so measured allocs/op over any realistic
// batch sequence is ≤ 2 (gated by cmd/epfis-bench -suite ingest).
//
// An Accum is not safe for concurrent use.
type Accum struct {
	fen []int32 // Fenwick over stream positions, 1-based; len = n+1 once fed
	n   int     // references consumed so far

	cold    int64   // first-ever references (== number of distinct pages)
	counts  []int64 // counts[d] = references at stack distance d
	maxDist int     // high-water mark of counts actually touched

	lastPos []int32          // dense page id -> most recent position (0-based)
	pages   []storage.PageID // dense page id -> raw id, in first-sight order

	// Raw-id remap: slice path while ids stay dense, map fallback once the
	// largest raw id outgrows maxSliceRemapFactor*refs + slack. denseOf
	// stores dense+1 so the zero value means "unseen" (no epoch stamps —
	// an Accum never resets implicitly).
	denseOf []int32
	remap   map[storage.PageID]int32
}

// MaxAccumRefs is the reference-count capacity of one Accum: positions are
// int32, so a stream (or merge result) longer than this cannot be represented.
const MaxAccumRefs = math.MaxInt32 - 1

// NewAccum returns an empty accumulator.
func NewAccum() *Accum { return &Accum{} }

// Total reports the number of references consumed so far.
func (a *Accum) Total() int64 { return int64(a.n) }

// Distinct reports the number of distinct pages seen so far — the cold-miss
// count, the paper's A for the accumulated stream.
func (a *Accum) Distinct() int64 { return a.cold }

// MaxPageID reports the largest raw page id seen, or 0 on an empty Accum.
// Callers deriving table metadata from a stream use it as a lower bound on T.
func (a *Accum) MaxPageID() storage.PageID {
	var max storage.PageID
	for _, pg := range a.pages {
		if pg > max {
			max = pg
		}
	}
	return max
}

// Reset returns the accumulator to the empty state, retaining capacity so a
// rotated accumulator re-fills without reallocating.
func (a *Accum) Reset() {
	for i := range a.fen {
		a.fen[i] = 0
	}
	a.fen = a.fen[:0]
	a.n = 0
	a.cold = 0
	for d := 1; d <= a.maxDist; d++ {
		a.counts[d] = 0
	}
	a.maxDist = 0
	a.lastPos = a.lastPos[:0]
	a.pages = a.pages[:0]
	for i := range a.denseOf {
		a.denseOf[i] = 0
	}
	if a.remap != nil {
		clear(a.remap)
	}
}

// Feed consumes one batch of references, extending the accumulated stream.
// The batch may alias a buffer the caller reuses; nothing is retained.
func (a *Accum) Feed(t Trace) {
	if len(t) == 0 {
		return
	}
	if int64(a.n)+int64(len(t)) > MaxAccumRefs {
		panic(fmt.Sprintf("lrusim: Accum overflow: %d+%d references exceed MaxAccumRefs", a.n, len(t)))
	}
	a.extendFen(a.n + len(t))
	for _, pg := range t {
		p := a.n
		id, seen := a.lookup(pg)
		if !seen {
			id = a.assign(pg)
			a.cold++
			a.lastPos[id] = int32(p)
			a.fenAdd(p+1, 1)
			a.n++
			continue
		}
		prev := int(a.lastPos[id])
		// Distinct pages referenced strictly between prev and p: the
		// most-recent-reference markers after prev, excluding the page's own
		// marker still sitting at prev; distance is that count + 1.
		d := a.fenRange(prev+1, p-1) + 1
		a.count(d)
		a.fenAdd(prev+1, -1)
		a.lastPos[id] = int32(p)
		a.fenAdd(p+1, 1)
		a.n++
	}
}

// Merge appends b's accumulated stream to a's: afterwards a holds exactly the
// state of an accumulator that consumed a's references followed by b's, and
// a.Curve() equals Scratch.Analyze over the concatenated trace bit for bit.
// b is read, not modified, and remains usable.
//
// The fix-up is the heart of the operation: a reference that was a cold miss
// within b may have a finite stack distance in the concatenation (its page was
// seen in a). Walking b's distinct pages in first-sight order while retiring
// their a-region markers as we go makes that distance exactly
//
//	rank(p in b's first-sight order) + live a-markers above lastA(p) + 1
//
// — the earlier b-pages are counted by rank whether or not a knew them, and
// the a-region query skips exactly the pages already counted, because their
// markers have been retired. Every non-first reference within b keeps the
// distance b already recorded (its reuse window is entirely inside b), so
// b's histogram merges wholesale.
func (a *Accum) Merge(b *Accum) {
	if b.n == 0 {
		return
	}
	if b == a {
		panic("lrusim: Accum.Merge with itself")
	}
	if int64(a.n)+int64(b.n) > MaxAccumRefs {
		panic(fmt.Sprintf("lrusim: Accum overflow: %d+%d references exceed MaxAccumRefs", a.n, b.n))
	}
	oldN := a.n
	a.extendFen(oldN + b.n)
	// Within-b distances are unchanged by prefixing a's stream.
	if b.maxDist >= len(a.counts) {
		a.growCounts(b.maxDist)
	}
	if b.maxDist > a.maxDist {
		a.maxDist = b.maxDist
	}
	for d := 1; d <= b.maxDist; d++ {
		a.counts[d] += b.counts[d]
	}
	// First-sight pages of b, in order: fix up the cold misses that are
	// re-references in the concatenation, retire superseded a-markers, and
	// plant each page's merged marker at its last-b position.
	for r, pg := range b.pages {
		if i, inA := a.lookup(pg); inA {
			ip := int(a.lastPos[i])
			after := a.fenRange(ip+1, oldN-1)
			a.count(r + after + 1)
			a.fenAdd(ip+1, -1)
			mp := oldN + int(b.lastPos[r])
			a.lastPos[i] = int32(mp)
			a.fenAdd(mp+1, 1)
			continue
		}
		id := a.assign(pg)
		a.cold++
		mp := oldN + int(b.lastPos[r])
		a.lastPos[id] = int32(mp)
		a.fenAdd(mp+1, 1)
	}
	a.n += b.n
}

// Curve materializes the fetch curve of everything accumulated so far. Only
// the returned FetchCurve and its cumulative array are allocated; the Accum
// keeps accumulating afterwards.
func (a *Accum) Curve() *FetchCurve {
	cum := make([]int64, a.maxDist+1)
	var run int64
	for d := 1; d <= a.maxDist; d++ {
		run += a.counts[d]
		cum[d] = run
	}
	return &FetchCurve{cumHits: cum, cold: a.cold, total: int64(a.n)}
}

// Histogram materializes the stack-distance histogram accumulated so far.
func (a *Accum) Histogram() *Histogram {
	h := &Histogram{Total: int64(a.n), Cold: a.cold}
	h.Counts = make([]int64, a.maxDist+1)
	copy(h.Counts, a.counts[:min(len(a.counts), a.maxDist+1)])
	return h
}

// count records one reference at stack distance d, growing the counts table
// as the high-water mark advances.
func (a *Accum) count(d int) {
	if d >= len(a.counts) {
		a.growCounts(d)
	}
	if d > a.maxDist {
		a.maxDist = d
	}
	a.counts[d]++
}

func (a *Accum) growCounts(d int) {
	for len(a.counts) <= d {
		a.counts = append(a.counts, 0)
	}
}

// lookup resolves a raw page id to its dense id without assigning one.
func (a *Accum) lookup(pg storage.PageID) (int32, bool) {
	if a.remap != nil {
		id, ok := a.remap[pg]
		return id, ok
	}
	if int(pg) < len(a.denseOf) {
		if v := a.denseOf[pg]; v != 0 {
			return v - 1, true
		}
	}
	return 0, false
}

// assign registers a first-sight page, returning its new dense id and
// growing lastPos/pages in step. The slice remap is kept while raw ids stay
// within maxSliceRemapFactor of the reference count (the Scratch rule);
// a sparse id migrates everything to the map path, permanently.
func (a *Accum) assign(pg storage.PageID) int32 {
	id := int32(len(a.pages))
	a.pages = append(a.pages, pg)
	a.lastPos = append(a.lastPos, 0)
	if a.remap != nil {
		a.remap[pg] = id
		return id
	}
	if need := int(pg) + 1; need > len(a.denseOf) {
		if int64(pg) >= int64(maxSliceRemapFactor)*int64(a.n+1)+maxSliceRemapSlack {
			// Too sparse for a flat table: migrate to the map, once.
			a.remap = make(map[storage.PageID]int32, len(a.pages)*2)
			for raw, v := range a.denseOf {
				if v != 0 {
					a.remap[storage.PageID(raw)] = v - 1
				}
			}
			a.denseOf = nil
			a.remap[pg] = id
			return id
		}
		if need <= cap(a.denseOf) {
			a.denseOf = a.denseOf[:need]
		} else {
			grown := make([]int32, need, max(need, 2*cap(a.denseOf)))
			copy(grown, a.denseOf)
			a.denseOf = grown
		}
	}
	a.denseOf[pg] = id + 1
	return id
}

// extendFen grows the Fenwick tree to cover positions 1..m. New indexes carry
// prefix information over the existing marker region only (every position
// past the current stream end has value zero until a marker lands there): an
// index whose covered range stays inside the new region is zero, and the few
// whose range crosses the old boundary — at most one per bit of m — get the
// boundary-bounded prefix difference. Subsequent fenAdd calls update the new
// indexes like any others.
func (a *Accum) extendFen(m int) {
	if len(a.fen) == 0 {
		if cap(a.fen) > 0 {
			a.fen = a.fen[:1]
			a.fen[0] = 0
		} else {
			a.fen = append(a.fen, 0)
		}
	}
	old := len(a.fen) - 1 // current max covered position
	if m <= old {
		return
	}
	if cap(a.fen) < m+1 {
		grown := make([]int32, len(a.fen), max(m+1, 2*cap(a.fen)))
		copy(grown, a.fen)
		a.fen = grown
	}
	for i := old + 1; i <= m; i++ {
		lo := i - i&(-i)
		var v int32
		if lo < old {
			v = int32(a.fenPrefix(old) - a.fenPrefix(lo))
		}
		a.fen = append(a.fen, v)
	}
}

func (a *Accum) fenAdd(i int, delta int32) {
	for ; i < len(a.fen); i += i & (-i) {
		a.fen[i] += delta
	}
}

func (a *Accum) fenPrefix(i int) int {
	sum := 0
	if i >= len(a.fen) {
		i = len(a.fen) - 1
	}
	for ; i > 0; i -= i & (-i) {
		sum += int(a.fen[i])
	}
	return sum
}

// fenRange sums positions lo..hi inclusive, 0-based stream coordinates.
func (a *Accum) fenRange(lo, hi int) int {
	if hi < lo {
		return 0
	}
	return a.fenPrefix(hi+1) - a.fenPrefix(lo)
}
