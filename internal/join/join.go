// Package join implements index nested-loop joins over the table substrate.
//
// This is the system context the paper's main baseline came from: Mackert &
// Lohman's 1989 TODS model was built to cost the INNER index scan of a join,
// where the outer relation drives a stream of key probes into the inner
// index and the question is how many inner data-page fetches survive the LRU
// buffer. It is also a natural consumer of EPFIS beyond the paper's
// single-scan setting:
//
//   - When the outer stream is sorted on the join key (merge-like pattern),
//     the inner page-reference trace is exactly a partial inner index scan
//     in key order — EPFIS's home turf: estimate with Est-IO at the matched
//     selectivity.
//   - When the outer stream arrives in physical (heap) order with
//     uncorrelated keys, the probes hit the inner index in effectively
//     random key order — ML's home turf: estimate with the ML formula at
//     x = distinct probe keys.
//
// The executor measures ground truth through a real buffer pool, so the two
// estimation regimes can be validated against actual fetch counts
// (TestEstimatorsMatchTheirHomeRegimes).
package join

import (
	"errors"
	"fmt"

	"epfis/internal/baselines"
	"epfis/internal/btree"
	"epfis/internal/buffer"
	"epfis/internal/core"
	"epfis/internal/stats"
	"epfis/internal/storage"
	"epfis/internal/table"
)

// OuterOrder selects how the outer relation is streamed.
type OuterOrder int

const (
	// ByKey streams outer records in join-key order (via the outer index):
	// inner probes arrive sorted.
	ByKey OuterOrder = iota
	// ByHeap streams outer records in physical page order: inner probes
	// arrive in whatever order the outer placement dictates.
	ByHeap
)

// String names the order.
func (o OuterOrder) String() string {
	if o == ByHeap {
		return "heap-order"
	}
	return "key-order"
}

// Result summarizes one executed join.
type Result struct {
	// OuterRecords is the number of outer records streamed.
	OuterRecords int
	// Matches is the number of (outer, inner) joined pairs produced.
	Matches int
	// ProbeKeys is the number of distinct join keys probed.
	ProbeKeys int
	// InnerFetches is the number of inner data-page fetches through the
	// pool — the quantity the estimators predict.
	InnerFetches int64
	// KeySum checksums the joined inner keys, proving records were decoded.
	KeySum int64
}

// Errors returned by this package.
var ErrBadJoin = errors.New("join: invalid join specification")

// IndexNestedLoop executes outer JOIN inner ON outer.outerCol =
// inner.innerCol. Outer pages are read unbuffered (a sequential scan);
// every inner data-page access goes through pool, whose fetch counter is
// the measured inner cost.
func IndexNestedLoop(outer *table.Table, outerCol string, inner *table.Table, innerCol string, order OuterOrder, pool buffer.Pool) (Result, error) {
	innerIx, err := inner.Index(innerCol)
	if err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrBadJoin, err)
	}
	pool.Reset()
	var res Result
	seenKeys := make(map[int64]struct{})

	probe := func(key int64) error {
		res.OuterRecords++
		seenKeys[key] = struct{}{}
		return innerIx.Tree.Scan(btree.Ge(key), btree.Le(key), func(e btree.Entry) error {
			pg, err := pool.Get(e.RID.Page)
			if err != nil {
				return err
			}
			raw, err := pg.Record(e.RID.Slot)
			if err != nil {
				return err
			}
			rec, err := storage.DecodeRecord(raw)
			if err != nil {
				return err
			}
			if rec.Key != key {
				return fmt.Errorf("join: inner record at %v has key %d, probed %d", e.RID, rec.Key, key)
			}
			res.Matches++
			res.KeySum += rec.Key
			return nil
		})
	}

	switch order {
	case ByKey:
		outerIx, err := outer.Index(outerCol)
		if err != nil {
			return Result{}, fmt.Errorf("%w: %v", ErrBadJoin, err)
		}
		err = outerIx.Tree.Scan(nil, nil, func(e btree.Entry) error {
			return probe(e.Key)
		})
		if err != nil {
			return Result{}, err
		}
	case ByHeap:
		for _, pid := range outer.DataPages {
			var pg storage.Page
			if err := outer.Store.ReadPage(pid, &pg); err != nil {
				return Result{}, err
			}
			for slot := 0; slot < pg.NumSlots(); slot++ {
				raw, err := pg.Record(uint16(slot))
				if err != nil {
					return Result{}, err
				}
				rec, err := storage.DecodeRecord(raw)
				if err != nil {
					return Result{}, err
				}
				if err := probe(rec.Key); err != nil {
					return Result{}, err
				}
			}
		}
	default:
		return Result{}, fmt.Errorf("%w: unknown order %d", ErrBadJoin, order)
	}
	res.ProbeKeys = len(seenKeys)
	res.InnerFetches = pool.Stats().Fetches
	return res, nil
}

// EstimateSortedProbes predicts the inner fetches of a ByKey join with
// Est-IO: sorted probes make the inner reference trace a partial index scan
// at selectivity sigma = matched inner records / N.
func EstimateSortedProbes(innerStats *stats.IndexStats, matchedInnerRecords int64, bufferPages int64) (float64, error) {
	sigma := float64(matchedInnerRecords) / float64(innerStats.N)
	if sigma > 1 {
		sigma = 1
	}
	return core.EstimateFetches(innerStats, bufferPages, sigma, 1)
}

// EstimateRandomProbes predicts the inner fetches of a ByHeap join with the
// Mackert-Lohman formula at x = probeKeys distinct key values — ML's
// original use case.
func EstimateRandomProbes(innerStats *stats.IndexStats, probeKeys int64, bufferPages int64) (float64, error) {
	sigma := float64(probeKeys) / float64(innerStats.I)
	if sigma > 1 {
		sigma = 1
	}
	return baselines.ML{}.Estimate(baselines.Params{
		T: innerStats.T, N: innerStats.N, I: innerStats.I,
		B: bufferPages, Sigma: sigma, S: 1,
	})
}
