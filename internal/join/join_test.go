package join

import (
	"math"
	"testing"

	"epfis/internal/buffer"
	"epfis/internal/core"
	"epfis/internal/datagen"
	"epfis/internal/stats"
	"epfis/internal/table"
)

// world builds an inner table (clustering controlled by k; 5000 keys with 4
// records each) and an outer table with 2000 UNIQUE keys covering a prefix
// of the inner domain, so every probe matches and each key is probed once —
// the setting both estimation models are defined for. (With heavily repeated
// outer keys, repeats only hit cache when B exceeds the per-key page
// footprint; see the executor-measured numbers in
// TestRepeatedProbesNeedFootprintSizedBuffer.)
func world(t testing.TB, innerK float64) (outer, inner *table.Table, innerStats *stats.IndexStats) {
	t.Helper()
	innerDS, err := datagen.GenerateDataset(datagen.Config{
		Name: "inner", N: 20_000, I: 5_000, R: 40, K: innerK, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner, err = datagen.Materialize(innerDS)
	if err != nil {
		t.Fatal(err)
	}
	innerStats, err = core.LRUFit(innerDS.Trace(), core.Meta{
		Table: "inner", Column: "key", T: innerDS.T, N: 20_000, I: 5_000,
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Outer: 2000 unique keys over the first 2000 inner keys, placed
	// randomly so ByHeap order scrambles the probe sequence.
	outerDS, err := datagen.GenerateDataset(datagen.Config{
		Name: "outer", N: 2_000, I: 2_000, R: 40, K: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	outer, err = datagen.Materialize(outerDS)
	if err != nil {
		t.Fatal(err)
	}
	return outer, inner, innerStats
}

func TestJoinProducesAllMatches(t *testing.T) {
	outer, inner, _ := world(t, 0.2)
	pool, err := buffer.NewLRU(inner.Store, 50)
	if err != nil {
		t.Fatal(err)
	}
	byKey, err := IndexNestedLoop(outer, "key", inner, "key", ByKey, pool)
	if err != nil {
		t.Fatal(err)
	}
	byHeap, err := IndexNestedLoop(outer, "key", inner, "key", ByHeap, pool)
	if err != nil {
		t.Fatal(err)
	}
	// Join output is order-independent.
	if byKey.Matches != byHeap.Matches || byKey.KeySum != byHeap.KeySum {
		t.Errorf("orders disagree: %+v vs %+v", byKey, byHeap)
	}
	if byKey.OuterRecords != 2000 {
		t.Errorf("outer records = %d", byKey.OuterRecords)
	}
	if byKey.ProbeKeys != 2000 {
		t.Errorf("probe keys = %d", byKey.ProbeKeys)
	}
	// Every outer record matches inner duplicates: 20k/5000 = 4 per key.
	if want := 2000 * 4; byKey.Matches != want {
		t.Errorf("matches = %d, want %d", byKey.Matches, want)
	}
}

func TestSortedProbesCheaperThanRandom(t *testing.T) {
	// With an unclustered inner and a small buffer, sorted probes exploit
	// locality that heap-order probes destroy.
	outer, inner, _ := world(t, 0.1)
	pool, err := buffer.NewLRU(inner.Store, 50)
	if err != nil {
		t.Fatal(err)
	}
	byKey, err := IndexNestedLoop(outer, "key", inner, "key", ByKey, pool)
	if err != nil {
		t.Fatal(err)
	}
	byHeap, err := IndexNestedLoop(outer, "key", inner, "key", ByHeap, pool)
	if err != nil {
		t.Fatal(err)
	}
	if byKey.InnerFetches >= byHeap.InnerFetches {
		t.Errorf("sorted probes fetched %d, heap-order %d", byKey.InnerFetches, byHeap.InnerFetches)
	}
}

func TestEstimatorsMatchTheirHomeRegimes(t *testing.T) {
	for _, innerK := range []float64{0.05, 1.0} {
		outer, inner, innerStats := world(t, innerK)
		for _, b := range []int{25, 250} {
			pool, err := buffer.NewLRU(inner.Store, b)
			if err != nil {
				t.Fatal(err)
			}
			byKey, err := IndexNestedLoop(outer, "key", inner, "key", ByKey, pool)
			if err != nil {
				t.Fatal(err)
			}
			// Matched inner records: each probe key matches 4 inner rows.
			matched := int64(byKey.ProbeKeys) * (20_000 / 5_000)
			est, err := EstimateSortedProbes(innerStats, matched, int64(b))
			if err != nil {
				t.Fatal(err)
			}
			actual := float64(byKey.InnerFetches)
			// The probes cover a PREFIX of the key domain. On the window-
			// clustered inner at tiny B, EPFIS's linear sigma-scaling
			// over-estimates (the generator's early window region is better
			// clustered than the table-wide average the FPF curve reflects)
			// — the same class of heterogeneity the paper's Equation 1
			// addresses for small scans. Allow that one cell a looser bound.
			tol := 0.6
			if innerK < 0.1 && b < 100 {
				tol = 1.5
			}
			if rel := math.Abs(est-actual) / actual; rel > tol {
				t.Errorf("K=%g B=%d ByKey: EPFIS est %.0f vs actual %.0f (%.0f%%)",
					innerK, b, est, actual, rel*100)
			}

			byHeap, err := IndexNestedLoop(outer, "key", inner, "key", ByHeap, pool)
			if err != nil {
				t.Fatal(err)
			}
			mlEst, err := EstimateRandomProbes(innerStats, int64(byHeap.ProbeKeys), int64(b))
			if err != nil {
				t.Fatal(err)
			}
			// ML's home regime is the unclustered inner; only hold it to
			// account there.
			if innerK == 1.0 {
				actualH := float64(byHeap.InnerFetches)
				if rel := math.Abs(mlEst-actualH) / actualH; rel > 0.9 {
					t.Errorf("K=%g B=%d ByHeap: ML est %.0f vs actual %.0f (%.0f%%)",
						innerK, b, mlEst, actualH, rel*100)
				}
			}
		}
	}
}

func TestRepeatedProbesNeedFootprintSizedBuffer(t *testing.T) {
	// The modeling subtlety the executor exposes: when the outer stream
	// repeats a key, the repeat only hits cache if the buffer can hold the
	// key's whole page footprint between probes. Inner: 40 records per key
	// scattered over ~40 pages (K=1). Sorted probes of a repeated key are
	// adjacent, so B=100 >= footprint caches them; B=10 cannot.
	innerDS, err := datagen.GenerateDataset(datagen.Config{
		Name: "inner", N: 20_000, I: 500, R: 40, K: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := datagen.Materialize(innerDS)
	if err != nil {
		t.Fatal(err)
	}
	outerDS, err := datagen.GenerateDataset(datagen.Config{
		Name: "outer", N: 1_000, I: 50, R: 40, K: 1, Seed: 9, // 20 repeats/key
	})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := datagen.Materialize(outerDS)
	if err != nil {
		t.Fatal(err)
	}
	fetch := func(b int) int64 {
		pool, err := buffer.NewLRU(inner.Store, b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := IndexNestedLoop(outer, "key", inner, "key", ByKey, pool)
		if err != nil {
			t.Fatal(err)
		}
		return res.InnerFetches
	}
	small, big := fetch(10), fetch(100)
	// B=10 < 40-page footprint: every one of the 1000 probes re-fetches
	// ~40 pages. B=100: only the 50 distinct keys fetch.
	if small < 5*big {
		t.Errorf("repeat probes: B=10 fetched %d, B=100 fetched %d (expected >=5x gap)", small, big)
	}
	if big > 3*50*40 {
		t.Errorf("B=100 fetched %d, want ~2000 (one visit per key)", big)
	}
}

func TestJoinValidation(t *testing.T) {
	outer, inner, _ := world(t, 0.5)
	pool, err := buffer.NewLRU(inner.Store, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IndexNestedLoop(outer, "key", inner, "nope", ByKey, pool); err == nil {
		t.Error("unknown inner column accepted")
	}
	if _, err := IndexNestedLoop(outer, "nope", inner, "key", ByKey, pool); err == nil {
		t.Error("unknown outer column accepted")
	}
	if _, err := IndexNestedLoop(outer, "key", inner, "key", OuterOrder(9), pool); err == nil {
		t.Error("unknown order accepted")
	}
	if ByKey.String() != "key-order" || ByHeap.String() != "heap-order" {
		t.Error("OuterOrder.String broken")
	}
}
