package catalog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"epfis/internal/faultfs"
)

// walFixture opens a WAL-backed store in a fresh temp dir.
func walFixture(t *testing.T, opts WALOptions, fsys faultfs.FS) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "catalog.json")
	if fsys == nil {
		fsys = faultfs.OS()
	}
	st, err := OpenWALFS(path, opts, fsys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, path
}

// stateOf captures the observable catalog contents for equality checks.
func stateOf(s *Snapshot) map[string]int64 {
	out := make(map[string]int64, s.Len())
	for _, k := range s.keys {
		out[k] = s.entries[k].FMin
	}
	return out
}

func statesEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestWALRoundTrip(t *testing.T) {
	st, path := walFixture(t, WALOptions{}, nil)
	if gen, err := st.Put(entry("orders", "key", 500)); err != nil || gen != 1 {
		t.Fatalf("Put = (%d, %v), want gen 1", gen, err)
	}
	if gen, err := st.Put(entry("orders", "custno", 600)); err != nil || gen != 2 {
		t.Fatalf("Put = (%d, %v), want gen 2", gen, err)
	}
	if ok, gen, err := st.Delete("orders", "key"); err != nil || !ok || gen != 3 {
		t.Fatalf("Delete = (%v, %d, %v), want (true, 3)", ok, gen, err)
	}
	if ok, _, err := st.Delete("orders", "key"); err != nil || ok {
		t.Fatalf("second Delete = (%v, %v), want no-op", ok, err)
	}
	want := stateOf(st.Snapshot())
	if st.WALStatsNow().DurableLSN != 3 {
		t.Fatalf("durable lsn = %d, want 3", st.WALStatsNow().DurableLSN)
	}
	st.Close()
	if _, err := st.Put(entry("x", "y", 100)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close err = %v, want ErrClosed", err)
	}

	re, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := stateOf(re.Snapshot()); !statesEqual(got, want) {
		t.Fatalf("reopened state %v, want %v", got, want)
	}
	// Compiled estimators must exist for replayed entries too.
	if _, ok := re.Snapshot().Compiled("orders", "custno"); !ok {
		t.Fatal("replayed entry has no compiled estimator")
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	// Concurrent writers with a slowed WAL fsync: commits must all land, and
	// group commit must batch them — far fewer fsyncs than mutations.
	inj := faultfs.NewInjector(faultfs.OS(), 1)
	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Path: ".wal", Nth: 1, Count: -1,
		Mode: faultfs.ModeSlow, Delay: 4 * time.Millisecond})
	st, path := walFixture(t, WALOptions{}, inj)

	const writers, each = 8, 8
	var wg sync.WaitGroup
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				col := fmt.Sprintf("c%d_%d", wkr, i)
				if _, err := st.Put(entry("t", col, int64(100+wkr))); err != nil {
					t.Errorf("Put %s: %v", col, err)
				}
			}
		}(wkr)
	}
	wg.Wait()

	if n := st.Len(); n != writers*each {
		t.Fatalf("Len = %d, want %d", n, writers*each)
	}
	ws := st.WALStatsNow()
	if ws.LSN != writers*each || ws.DurableLSN != ws.LSN {
		t.Fatalf("wal stats = %+v, want lsn=durable=%d", ws, writers*each)
	}
	syncs := 0
	for _, op := range inj.Trace() {
		if strings.HasPrefix(op, string(faultfs.OpSync)) && strings.Contains(op, ".wal") {
			syncs++
		}
	}
	// One fsync for the header plus one per group. Strictly fewer than one
	// per commit proves batching happened.
	if syncs >= writers*each {
		t.Fatalf("%d wal fsyncs for %d commits: group commit did not batch", syncs, writers*each)
	}
	want := stateOf(st.Snapshot())
	st.Close()
	re, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := stateOf(re.Snapshot()); !statesEqual(got, want) {
		t.Fatal("reopened state diverged after concurrent commits")
	}
}

func TestWALCheckpointRotation(t *testing.T) {
	st, path := walFixture(t, WALOptions{CheckpointEvery: 4}, nil)
	for i := 0; i < 10; i++ {
		if _, err := st.Put(entry("t", fmt.Sprintf("c%d", i), 200)); err != nil {
			t.Fatal(err)
		}
	}
	// 10 commits with CheckpointEvery=4: at least two checkpoints ran.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), " lsn=") {
		t.Fatal("checkpoint file has no lsn trailer field")
	}
	if ws := st.WALStatsNow(); ws.SinceCheckpoint >= 10 {
		t.Fatalf("SinceCheckpoint = %d after checkpoints", ws.SinceCheckpoint)
	}
	// The rotated log holds only the post-checkpoint tail.
	wal, err := os.ReadFile(st.WALPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) > 4096 {
		t.Fatalf("wal is %d bytes after rotation; rotation did not truncate", len(wal))
	}
	want := stateOf(st.Snapshot())
	st.Close()
	re, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := stateOf(re.Snapshot()); !statesEqual(got, want) {
		t.Fatalf("reopened state %v, want %v", got, want)
	}

	// An explicit checkpoint drains the log entirely.
	if _, err := re.Put(entry("t", "late", 250)); err != nil {
		t.Fatal(err)
	}
	if err := re.Save(); err != nil {
		t.Fatal(err)
	}
	if ws := re.WALStatsNow(); ws.SinceCheckpoint != 0 {
		t.Fatalf("SinceCheckpoint = %d after Save", ws.SinceCheckpoint)
	}
}

func TestWALRecoveryTornTail(t *testing.T) {
	// Build a log of commits, then truncate it at EVERY byte length. Each
	// truncation must recover without error to exactly one of the committed
	// prefix states — never a torn or interpolated catalog.
	st, path := walFixture(t, WALOptions{CheckpointEvery: -1}, nil)
	prefixes := []map[string]int64{stateOf(st.Snapshot())}
	for i := 0; i < 5; i++ {
		if _, err := st.Put(entry("t", fmt.Sprintf("c%d", i), int64(110+i))); err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, stateOf(st.Snapshot()))
	}
	st.Close()
	walPath := st.WALPath()
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	matches := func(got map[string]int64) int {
		for i, p := range prefixes {
			if statesEqual(got, p) {
				return i
			}
		}
		return -1
	}
	lastIdx := -1
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenWAL(path, WALOptions{CheckpointEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got := stateOf(re.Snapshot())
		re.Close()
		idx := matches(got)
		if idx < 0 {
			t.Fatalf("cut %d: recovered state %v matches no committed prefix", cut, got)
		}
		if idx < lastIdx {
			t.Fatalf("cut %d: recovered prefix %d after already recovering %d", cut, idx, lastIdx)
		}
		lastIdx = idx
	}
	if lastIdx != len(prefixes)-1 {
		t.Fatalf("full log recovered prefix %d, want %d", lastIdx, len(prefixes)-1)
	}
}

func TestWALReload(t *testing.T) {
	st, _ := walFixture(t, WALOptions{}, nil)
	if _, err := st.Put(entry("t", "a", 700)); err != nil {
		t.Fatal(err)
	}
	want := stateOf(st.Snapshot())
	gen := st.Generation()
	newGen, err := st.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if newGen <= gen {
		t.Fatalf("Reload gen = %d, want > %d", newGen, gen)
	}
	if got := stateOf(st.Snapshot()); !statesEqual(got, want) {
		t.Fatalf("Reload changed state: %v, want %v", got, want)
	}
}

func TestChaosWALAppendAndFsyncFailures(t *testing.T) {
	// Injected append and fsync failures must fail the commit honestly —
	// readers keep the previous durable generation — and the next commit
	// must repair the torn tail and succeed.
	for _, mode := range []struct {
		name string
		rule faultfs.Rule
	}{
		{"append-error", faultfs.Rule{Op: faultfs.OpWrite, Path: ".wal", Nth: 1}},
		{"append-partial", faultfs.Rule{Op: faultfs.OpWrite, Path: ".wal", Nth: 1, Mode: faultfs.ModePartial}},
		{"fsync-error", faultfs.Rule{Op: faultfs.OpSync, Path: ".wal", Nth: 1}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			inj := faultfs.NewInjector(faultfs.OS(), 1)
			st, path := walFixture(t, WALOptions{}, inj)
			if _, err := st.Put(entry("t", "base", 101)); err != nil {
				t.Fatal(err)
			}
			before := stateOf(st.Snapshot())
			beforeGen := st.Generation()

			inj.Add(mode.rule) // arms against the NEXT wal write/sync
			if _, err := st.Put(entry("t", "doomed", 102)); err == nil {
				t.Fatal("Put under injected fault succeeded")
			}
			if got := stateOf(st.Snapshot()); !statesEqual(got, before) || st.Generation() != beforeGen {
				t.Fatalf("failed commit leaked: %v gen %d", got, st.Generation())
			}

			// Fault consumed; the store must repair and take new commits.
			if _, err := st.Put(entry("t", "after", 103)); err != nil {
				t.Fatalf("commit after repair: %v", err)
			}
			want := stateOf(st.Snapshot())
			st.Close()
			re, err := OpenWAL(path, WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := stateOf(re.Snapshot()); !statesEqual(got, want) {
				t.Fatalf("reopen after fault: %v, want %v", got, want)
			}
			if _, ok := re.Snapshot().Lookup("t.doomed"); ok {
				t.Fatal("aborted commit resurfaced after reopen")
			}
		})
	}
}

func TestChaosWALCheckpointFailure(t *testing.T) {
	// A failing checkpoint (rename of the snapshot) must not lose commits:
	// they are durable in the log regardless.
	inj := faultfs.NewInjector(faultfs.OS(), 1)
	inj.Add(faultfs.Rule{Op: faultfs.OpRename, Path: "catalog.json", Nth: 1, Count: -1})
	st, path := walFixture(t, WALOptions{CheckpointEvery: 2}, inj)
	for i := 0; i < 6; i++ {
		if _, err := st.Put(entry("t", fmt.Sprintf("c%d", i), 200)); err != nil {
			t.Fatalf("Put %d under checkpoint faults: %v", i, err)
		}
	}
	want := stateOf(st.Snapshot())
	st.Close()
	re, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := stateOf(re.Snapshot()); !statesEqual(got, want) {
		t.Fatalf("reopen after failed checkpoints: %v, want %v", got, want)
	}
}

func TestChaosWALConcurrentReadersSeeCommittedOnly(t *testing.T) {
	// Writers race injected faults while readers hammer snapshots: every
	// observed generation must be monotone and every observed entry valid.
	inj := faultfs.NewInjector(faultfs.OS(), 7)
	inj.Add(faultfs.Rule{Op: faultfs.OpWrite, Path: ".wal", Nth: 5, Count: 1})
	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Path: ".wal", Nth: 9, Count: 2})
	st, path := walFixture(t, WALOptions{CheckpointEvery: 8}, inj)

	stop := make(chan struct{})
	var readerErr error
	var readerMu sync.Mutex
	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := st.Snapshot()
				if s.Generation() < lastGen {
					readerMu.Lock()
					readerErr = fmt.Errorf("generation went backwards: %d -> %d", lastGen, s.Generation())
					readerMu.Unlock()
					return
				}
				lastGen = s.Generation()
				for _, k := range s.keys {
					if err := s.entries[k].Validate(); err != nil {
						readerMu.Lock()
						readerErr = fmt.Errorf("reader saw invalid entry %s: %v", k, err)
						readerMu.Unlock()
						return
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	committed := make([][]string, 4)
	for wkr := 0; wkr < 4; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				col := fmt.Sprintf("c%d_%d", wkr, i)
				if _, err := st.Put(entry("t", col, int64(100+i))); err == nil {
					committed[wkr] = append(committed[wkr], "t."+col)
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}

	// Every acknowledged commit must survive a reopen.
	want := stateOf(st.Snapshot())
	st.Close()
	re, err := OpenWAL(path, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := stateOf(re.Snapshot())
	if !statesEqual(got, want) {
		t.Fatalf("reopen state %v, want %v", got, want)
	}
	for _, keys := range committed {
		for _, k := range keys {
			if _, ok := re.Snapshot().Lookup(k); !ok {
				t.Fatalf("acknowledged commit %s lost after reopen", k)
			}
		}
	}
}

// FuzzWALRecovery throws arbitrary bytes at the log reader: recovery must
// never panic and must always produce a store whose every entry validates.
func TestWALIngestJournalInterleavedWithRotation(t *testing.T) {
	// Catalog commits and ingest-journal frames share one log, with
	// checkpoint rotation carrying live ingest frames into each fresh log.
	// Truncate the final log at EVERY byte: recovery must yield a committed
	// catalog prefix state, and every recovered ingest frame must be
	// byte-identical to an appended one — never torn, never invented.
	st, path := walFixture(t, WALOptions{CheckpointEvery: 2}, nil)
	var appended [][]byte
	// Every journaled frame stays live for the whole test, so each rotation
	// must carry all of them forward.
	st.SetIngestSource(func() [][]byte {
		out := make([][]byte, len(appended))
		copy(out, appended)
		return out
	})
	prefixes := []map[string]int64{stateOf(st.Snapshot())}
	for i := 0; i < 6; i++ {
		if _, err := st.Put(entry("t", fmt.Sprintf("c%d", i), int64(110+i))); err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, stateOf(st.Snapshot()))
		payload := []byte(fmt.Sprintf(`{"id":"batch-%d","table":"t","column":"c%d","pages":[%d,%d]}`, i, i, i, i+1))
		// Live-set registration precedes the append, as in the service: a
		// rotation racing the append must still carry the new frame.
		appended = append(appended, payload)
		if err := st.AppendIngest(payload); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	walPath := st.WALPath()
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	byteSet := map[string]bool{}
	for _, p := range appended {
		byteSet[string(p)] = true
	}

	matches := func(got map[string]int64) bool {
		for _, p := range prefixes {
			if statesEqual(got, p) {
				return true
			}
		}
		return false
	}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenWAL(path, WALOptions{CheckpointEvery: 2})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if got := stateOf(re.Snapshot()); !matches(got) {
			re.Close()
			t.Fatalf("cut %d: recovered catalog %v matches no committed prefix", cut, got)
		}
		recs := re.IngestRecords()
		seen := map[string]int{}
		for _, r := range recs {
			if !byteSet[string(r)] {
				re.Close()
				t.Fatalf("cut %d: recovered ingest frame %q was never appended", cut, r)
			}
			seen[string(r)]++
			if seen[string(r)] > 1 {
				re.Close()
				t.Fatalf("cut %d: ingest frame recovered twice: %q", cut, r)
			}
		}
		re.Close()
	}

	// The untruncated log recovers the complete live journal: rotation must
	// not have dropped a single carried frame.
	if err := os.WriteFile(walPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWAL(path, WALOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if recs := re.IngestRecords(); len(recs) != len(appended) {
		t.Fatalf("full log recovered %d ingest frames, want %d", len(recs), len(appended))
	}
}

func FuzzWALRecovery(f *testing.F) {
	// Seed with a genuine log so the fuzzer mutates realistic frames.
	dir, err := os.MkdirTemp("", "walfuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "catalog.json")
	st, err := OpenWAL(seedPath, WALOptions{CheckpointEvery: -1})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Put(entry("t", fmt.Sprintf("c%d", i), int64(100+i))); err != nil {
			f.Fatal(err)
		}
		// Interleave ingest-journal frames so the fuzzer mutates mixed logs.
		if err := st.AppendIngest([]byte(fmt.Sprintf(`{"id":"b%d","pages":[%d]}`, i, i))); err != nil {
			f.Fatal(err)
		}
	}
	st.Close()
	seed, err := os.ReadFile(st.WALPath())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, walBytes []byte) {
		tmp := t.TempDir()
		path := filepath.Join(tmp, "catalog.json")
		if err := os.WriteFile(path+".wal", walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenWAL(path, WALOptions{CheckpointEvery: -1})
		if err != nil {
			return // honest refusal is fine; panics are not
		}
		s := re.Snapshot()
		for _, k := range s.keys {
			if err := s.entries[k].Validate(); err != nil {
				t.Fatalf("recovered invalid entry %s: %v", k, err)
			}
		}
		// Recovered ingest frames must never be torn: appends were framed
		// whole, so any recovered payload parses where the original did.
		for _, rec := range re.IngestRecords() {
			if len(rec) == 0 {
				t.Fatal("recovered empty ingest frame")
			}
		}
		// The store must accept new commits after any recovery.
		if _, err := re.Put(entry("t", "post", 199)); err != nil {
			t.Fatalf("Put after recovery: %v", err)
		}
		if err := re.AppendIngest([]byte(`{"id":"post"}`)); err != nil {
			t.Fatalf("AppendIngest after recovery: %v", err)
		}
		re.Close()
	})
}
