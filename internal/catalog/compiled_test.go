package catalog

import (
	"path/filepath"
	"testing"
	"time"

	"epfis/internal/core"
	"epfis/internal/curvefit"
	"epfis/internal/stats"
)

func compiledTestEntry(table, column string, t int64) *stats.IndexStats {
	return &stats.IndexStats{
		Table: table, Column: column,
		T: t, N: 10 * t, I: t,
		BMin: 1, BMax: t, FMin: 5 * t, C: 0.5,
		Curve: curvefit.PolyLine{Knots: []curvefit.Point{
			{X: 1, Y: float64(8 * t)}, {X: float64(t), Y: float64(t)},
		}},
		GridPoints:  2,
		CollectedAt: time.Unix(1700000000, 0).UTC(),
	}
}

// TestSnapshotCarriesCompiledEstimators: every committed entry has a compiled
// estimator whose answers are bit-identical to interpreted EstIO.
func TestSnapshotCarriesCompiledEstimators(t *testing.T) {
	st := NewStore()
	if _, err := st.Put(compiledTestEntry("orders", "key", 100)); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	ce, ok := snap.Compiled("orders", "key")
	if !ok {
		t.Fatal("snapshot has no compiled estimator for installed entry")
	}
	e, err := snap.Get("orders", "key")
	if err != nil {
		t.Fatal(err)
	}
	in := core.Input{B: 17, Sigma: 0.2, S: 0.5}
	want, err := core.EstIO(e, in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ce.Estimate(in)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("compiled %+v != interpreted %+v", got, want)
	}
	if _, ok := snap.Compiled("orders", "nope"); ok {
		t.Fatal("compiled estimator for missing entry")
	}
	if _, ok := snap.CompiledByKey("orders.key"); !ok {
		t.Fatal("CompiledByKey miss for installed entry")
	}
}

// TestCompiledEstimatorsReusedAcrossGenerations: committing an unrelated
// entry must not recompile untouched entries — the snapshot shares both the
// entry pointer and its compiled estimator copy-on-write.
func TestCompiledEstimatorsReusedAcrossGenerations(t *testing.T) {
	st := NewStore()
	if _, err := st.Put(compiledTestEntry("orders", "key", 100)); err != nil {
		t.Fatal(err)
	}
	first, _ := st.Snapshot().Compiled("orders", "key")
	if _, err := st.Put(compiledTestEntry("lineitem", "partkey", 64)); err != nil {
		t.Fatal(err)
	}
	second, _ := st.Snapshot().Compiled("orders", "key")
	if first != second {
		t.Fatal("unchanged entry was recompiled on an unrelated commit")
	}

	// Replacing the entry itself must swap in a fresh compiled estimator.
	if _, err := st.Put(compiledTestEntry("orders", "key", 200)); err != nil {
		t.Fatal(err)
	}
	third, ok := st.Snapshot().Compiled("orders", "key")
	if !ok || third == second {
		t.Fatalf("replaced entry kept its stale compiled estimator (ok=%v)", ok)
	}
}

// TestCompiledEstimatorsSurviveReloadAndRecovery: snapshots published by
// Reload and by Open's recovery fallback also carry compiled estimators.
func TestCompiledEstimatorsSurviveReloadAndRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.json")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(compiledTestEntry("orders", "key", 100)); err != nil {
		t.Fatal(err)
	}

	// A second store opening the same file compiles at load time.
	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Snapshot().Compiled("orders", "key"); !ok {
		t.Fatal("Open produced a snapshot without compiled estimators")
	}

	// Reload publishes a freshly compiled snapshot.
	if _, err := st2.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Snapshot().Compiled("orders", "key"); !ok {
		t.Fatal("Reload produced a snapshot without compiled estimators")
	}
}
