package catalog

// Single-entry export/merge and per-entry digest coverage — the catalog
// primitives under delta anti-entropy.

import (
	"errors"
	"testing"
)

func TestExportEntryRoundTrip(t *testing.T) {
	src := NewStore()
	if _, err := src.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Put(entry("orders", "custno", 600)); err != nil {
		t.Fatal(err)
	}
	data, gen, err := src.ExportEntry("orders.key")
	if err != nil {
		t.Fatal(err)
	}
	if gen != src.Generation() {
		t.Fatalf("ExportEntry gen = %d, want %d", gen, src.Generation())
	}
	if _, _, err := src.ExportEntry("orders.nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ExportEntry on missing key err = %v, want ErrNotFound", err)
	}

	dst := NewStore()
	if _, err := dst.Put(entry("orders", "other", 700)); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.MergeEntries([][]byte{data}, nil); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 {
		t.Fatalf("after MergeEntries len = %d, want 2 (union, no deletes)", dst.Len())
	}
	got, err := dst.Get("orders", "key")
	if err != nil {
		t.Fatal(err)
	}
	if got.FMin != 500 {
		t.Fatalf("merged entry FMin = %d, want 500", got.FMin)
	}
}

func TestMergeEntriesRejectsCorruptStream(t *testing.T) {
	src := NewStore()
	if _, err := src.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}
	data, _, err := src.ExportEntry("orders.key")
	if err != nil {
		t.Fatal(err)
	}
	dst := NewStore()
	// No trailer at all: network transfers get no legacy grace.
	if _, err := dst.MergeEntries([][]byte{[]byte(`{"version":1,"entries":[]}`)}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailerless stream err = %v, want ErrCorrupt", err)
	}
	// Flip a payload byte: the trailer CRC must catch it.
	bad := append([]byte(nil), data...)
	bad[10] ^= 0x40
	if _, err := dst.MergeEntries([][]byte{bad}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted stream err = %v, want ErrCorrupt", err)
	}
	if dst.Generation() != 0 {
		t.Fatalf("failed merges must not commit, gen = %d", dst.Generation())
	}
}

func TestMergeEntriesSkipAndNoop(t *testing.T) {
	src := NewStore()
	if _, err := src.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}
	data, _, err := src.ExportEntry("orders.key")
	if err != nil {
		t.Fatal(err)
	}
	dst := NewStore()
	if _, err := dst.Put(entry("orders", "key", 111)); err != nil {
		t.Fatal(err)
	}
	before := dst.Generation()
	gen, err := dst.MergeEntries([][]byte{data}, func(k string) bool { return k == "orders.key" })
	if err != nil {
		t.Fatal(err)
	}
	if gen != before {
		t.Fatalf("fully skipped merge bumped generation %d -> %d", before, gen)
	}
	got, _ := dst.Get("orders", "key")
	if got.FMin != 111 {
		t.Fatalf("skipped key was overwritten, FMin = %d", got.FMin)
	}
	if gen, err := dst.MergeEntries(nil, nil); err != nil || gen != before {
		t.Fatalf("empty merge = (%d, %v), want (%d, nil)", gen, err, before)
	}
}

func TestEntryDigestsMatchContent(t *testing.T) {
	a, b := NewStore(), NewStore()
	for _, st := range []struct {
		col  string
		fmin int64
	}{{"key", 500}, {"custno", 600}} {
		if _, err := a.Put(entry("orders", st.col, st.fmin)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Put(entry("orders", st.col, st.fmin)); err != nil {
			t.Fatal(err)
		}
	}
	da, _, err := a.EntryDigests()
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := b.EntryDigests()
	if err != nil {
		t.Fatal(err)
	}
	if len(da) != 2 || len(db) != 2 {
		t.Fatalf("digest sizes %d/%d, want 2/2", len(da), len(db))
	}
	for k, v := range da {
		if db[k] != v {
			t.Fatalf("identical entries digest differently for %s: %08x vs %08x", k, v, db[k])
		}
	}
	// A divergent entry must change exactly its own digest.
	if _, err := b.Put(entry("orders", "key", 999)); err != nil {
		t.Fatal(err)
	}
	db2, _, err := b.EntryDigests()
	if err != nil {
		t.Fatal(err)
	}
	if db2["orders.key"] == da["orders.key"] {
		t.Fatal("mutated entry kept its digest")
	}
	if db2["orders.custno"] != da["orders.custno"] {
		t.Fatal("untouched entry changed digest")
	}
}
