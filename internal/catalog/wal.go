package catalog

// Write-ahead-logged persistence with group commit.
//
// The legacy persistence path (persist.go) serializes the WHOLE catalog and
// walks the full temp+fsync+rename+dirsync sequence on every mutation — crash
// safe, but each Put pays two fsyncs and a rewrite of every entry. The WAL
// mode trades that for an append-only log:
//
//	catalog.json          checkpoint: trailered snapshot + "lsn=N" field
//	catalog.json.wal      CRC32-C framed mutation log
//
// Each mutation appends one frame and the commit is a single fsync of the
// log — and that fsync is GROUP commit: while one writer's fsync is in
// flight, later writers enqueue their frames and park; whichever of them
// wakes first becomes the next leader and flushes the whole accumulated
// batch under one fsync. Under concurrency, N mutations cost ~1 fsync plus N
// tiny appends instead of N full-snapshot rewrites (the bench-ingest suite
// pins the ratio at >= 10x).
//
// Frame format (all integers little-endian):
//
//	[len u32][crc u32][type u8][lsn u64][payload]
//
// len covers type+lsn+payload; crc is CRC32-C over the same bytes. Types:
// header (log identity, written at creation/rotation), put (one entry's
// JSON), delete (the key), replace (a full catalog JSON). LSNs increase by
// one per logged mutation and never repeat within a log+checkpoint lineage.
//
// Durability protocol. Two snapshot pointers exist: Store.applied (newest
// BUILT state, possibly unfsynced) and Store.snap (published to readers,
// always durable). A mutation builds its snapshot against applied, assigns
// the next LSN, enqueues a ticket, and releases the store lock before any
// I/O — that's what lets commits overlap. The group leader appends the
// batch's frames, fsyncs once, and only then publishes the batch's last
// snapshot. On an append/fsync failure the leader fails every queued ticket
// (their snapshots stack on doomed state), rolls applied back to the
// published snapshot, rewinds the LSN, and marks the log for repair — the
// next leader truncates the file back to the durable offset before writing.
// Readers therefore never observe a generation that could be lost to a
// crash, and the crash-recovery fuzz (wal_test.go) holds that any torn tail
// recovers to exactly the last fsynced commit.
//
// Checkpointing. Every CheckpointEvery commits (and on Save/Checkpoint), the
// leader writes the current published snapshot through the legacy atomic-
// rename path with an "lsn=N" trailer field, then rotates the log: a fresh
// WAL containing only a header frame is built as a temp file, fsynced, and
// renamed over the old log. Recovery loads the checkpoint (falling back to
// .prev as always) and replays only frames with lsn > checkpoint lsn, so
// every crash window — mid-append, mid-checkpoint, mid-rotation — lands on a
// consistent committed state.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"epfis/internal/faultfs"
	"epfis/internal/stats"
)

// ErrClosed reports a mutation on a closed WAL-backed store.
var ErrClosed = errors.New("catalog: store is closed")

// WAL frame types.
const (
	walFrameHeader  byte = 0
	walFramePut     byte = 1
	walFrameDelete  byte = 2
	walFrameReplace byte = 3
	// walFrameIngest is an opaque ingest-journal record riding in the same
	// log: it never touches the catalog entry set, it just has to be durable
	// before the service acknowledges the batch it describes. Recovery hands
	// the payloads back through Store.IngestRecords; checkpoints carry the
	// still-live records into the rotated log (Store.SetIngestSource).
	walFrameIngest byte = 4
)

const (
	walHeaderMagic = "epfis-wal v1"
	// walFrameMeta is the framed byte count before the payload: len + crc +
	// type + lsn.
	walFrameMeta = 4 + 4 + 1 + 8
	// maxWALFrame bounds a frame's declared length so a corrupt length field
	// cannot drive a giant allocation during replay.
	maxWALFrame = 64 << 20
)

// DefaultCheckpointEvery is the commit count between automatic checkpoints
// when WALOptions.CheckpointEvery is zero.
const DefaultCheckpointEvery = 256

// WALOptions configures OpenWAL.
type WALOptions struct {
	// Dir is the directory for the log file (named <catalog base>.wal).
	// Empty means alongside the catalog file.
	Dir string
	// CheckpointEvery is the number of committed mutations between automatic
	// checkpoints. Zero means DefaultCheckpointEvery; negative disables
	// automatic checkpoints (Save/Checkpoint still work).
	CheckpointEvery int
}

// WALPath reports the log file for a catalog path under the given options.
func (o WALOptions) WALPath(catalogPath string) string {
	dir := o.Dir
	if dir == "" {
		dir = filepath.Dir(catalogPath)
	}
	return filepath.Join(dir, filepath.Base(catalogPath)+".wal")
}

// wal is the log file state. lsn is guarded by Store.mu; the durable*,
// needRepair, and handle fields are touched only by the current group-commit
// leader (leadership hand-off through walQueue orders the accesses).
type wal struct {
	fs   faultfs.FS
	path string
	f    faultfs.File

	lsn        uint64 // last assigned LSN (Store.mu)
	durableLSN uint64 // last fsynced LSN (leader only)
	durableOff int64  // fsynced byte length of the log (leader only)
	needRepair bool   // tail beyond durableOff may be torn (leader only)
	buf        []byte // reused batch write buffer (leader only)

	ingest [][]byte // ingest-journal payloads found during recovery
}

// walTicket is one enqueued mutation awaiting durability.
type walTicket struct {
	frame []byte
	snap  *Snapshot
	done  bool
	err   error
}

// walQueue is the group-commit rendezvous.
type walQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*walTicket
	syncing bool // a leader is writing/fsyncing (or holding for rotation)
}

// OpenWAL opens (or creates) a WAL-backed store for the catalog at path:
// append-only group-committed mutations with periodic checkpoints, instead
// of a full atomic rewrite per mutation. Recovery loads the checkpoint —
// with the same .prev fallback as Open — and replays committed log frames
// past it; a torn tail (crash mid-append) is truncated at the last complete
// frame.
func OpenWAL(path string, opts WALOptions) (*Store, error) {
	return OpenWALFS(path, opts, faultfs.OS())
}

// OpenWALFS is OpenWAL over an explicit filesystem — the injection point for
// fault-injected chaos tests and the EPFIS_FAULTS knob.
func OpenWALFS(path string, opts WALOptions, fsys faultfs.FS) (*Store, error) {
	st := NewStore()
	st.path = path
	st.fs = fsys
	st.checkpointEvery = opts.CheckpointEvery
	if st.checkpointEvery == 0 {
		st.checkpointEvery = DefaultCheckpointEvery
	}
	st.walQ.cond = sync.NewCond(&st.walQ.mu)

	c, snapLSN, recovered, err := loadWithRecoveryLSN(fsys, path)
	if err != nil {
		return nil, err
	}
	st.recovered = recovered
	entries := map[string]*stats.IndexStats{}
	gen := uint64(0)
	if c != nil {
		for _, k := range c.Keys() {
			if e, err := c.Get(splitKey(k)); err == nil {
				entries[k] = e
			}
		}
		gen = 1
	}

	w := &wal{fs: fsys, path: opts.WALPath(path), lsn: snapLSN, durableLSN: snapLSN}
	replayed, maxLSN, err := w.recover(snapLSN, entries)
	if err != nil {
		return nil, err
	}
	gen += uint64(replayed)
	w.lsn = maxLSN
	w.durableLSN = maxLSN

	snap := newSnapshot(gen, entries, nil)
	st.snap.Store(snap)
	st.applied = snap
	st.wal = w
	return st, nil
}

// WALPath reports the store's log file, or "" outside WAL mode.
func (st *Store) WALPath() string {
	if st.wal == nil {
		return ""
	}
	return st.wal.path
}

// recover reads the log, applies committed frames with lsn > snapLSN to
// entries, truncates any torn tail, and leaves the file open for append. It
// reports how many frames were applied and the highest LSN covered (snapLSN
// when the log is empty or entirely superseded by the checkpoint).
func (w *wal) recover(snapLSN uint64, entries map[string]*stats.IndexStats) (replayed int, maxLSN uint64, err error) {
	maxLSN = snapLSN
	data, rerr := w.fs.ReadFile(w.path)
	switch {
	case errors.Is(rerr, os.ErrNotExist):
		data = nil
	case rerr != nil:
		return 0, 0, fmt.Errorf("catalog: read wal: %w", rerr)
	}

	goodOff := int64(0)
	rest := data
	first := true
	for len(rest) > 0 {
		ftype, lsn, payload, tail, ok := parseWALFrame(rest)
		if !ok {
			break // torn or corrupt from here on: everything before is committed
		}
		if first {
			// The log must open with its identity frame; anything else means
			// the file is not (or no longer) a v1 WAL — replay nothing.
			if ftype != walFrameHeader || string(payload) != walHeaderMagic {
				break
			}
			first = false
		} else if ftype == walFrameHeader {
			break // a header mid-log is corruption
		} else if ftype == walFrameIngest {
			// Ingest records are collected regardless of the checkpoint LSN:
			// a checkpoint covers catalog state, not accumulator state, and
			// rotation re-stamps carried records with the checkpoint LSN.
			w.ingest = append(w.ingest, append([]byte(nil), payload...))
			if lsn > maxLSN {
				maxLSN = lsn
			}
		} else if lsn > snapLSN {
			if !applyWALFrame(entries, ftype, payload) {
				break // undecodable committed frame: stop at the last good one
			}
			replayed++
			if lsn > maxLSN {
				maxLSN = lsn
			}
		}
		goodOff += int64(len(rest) - len(tail))
		rest = tail
	}

	if data == nil || goodOff == 0 {
		// Missing, empty, or unrecognizable log: start a fresh one.
		return replayed, maxLSN, w.createFresh(maxLSN)
	}
	if goodOff < int64(len(data)) {
		if err := w.fs.Truncate(w.path, goodOff); err != nil {
			return 0, 0, fmt.Errorf("catalog: repair wal tail: %w", err)
		}
	}
	f, err := w.fs.OpenAppend(w.path)
	if err != nil {
		return 0, 0, fmt.Errorf("catalog: open wal: %w", err)
	}
	w.f = f
	w.durableOff = goodOff
	return replayed, maxLSN, nil
}

// createFresh truncates/creates the log and writes its header frame.
func (w *wal) createFresh(lsn uint64) error {
	if err := w.fs.Truncate(w.path, 0); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("catalog: reset wal: %w", err)
	}
	f, err := w.fs.OpenAppend(w.path)
	if err != nil {
		return fmt.Errorf("catalog: create wal: %w", err)
	}
	hdr := appendWALFrame(nil, walFrameHeader, lsn, []byte(walHeaderMagic))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("catalog: write wal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("catalog: sync wal header: %w", err)
	}
	w.f = f
	w.durableOff = int64(len(hdr))
	return nil
}

// applyWALFrame folds one mutation frame into entries, reporting false when
// the payload does not decode to a valid mutation.
func applyWALFrame(entries map[string]*stats.IndexStats, ftype byte, payload []byte) bool {
	switch ftype {
	case walFramePut:
		var e stats.IndexStats
		if err := json.Unmarshal(payload, &e); err != nil || e.Validate() != nil {
			return false
		}
		entries[e.Key()] = &e
		return true
	case walFrameDelete:
		delete(entries, string(payload))
		return true
	case walFrameReplace:
		c, err := stats.Load(bytes.NewReader(payload))
		if err != nil {
			return false
		}
		clear(entries)
		for _, k := range c.Keys() {
			if e, err := c.Get(splitKey(k)); err == nil {
				entries[k] = e
			}
		}
		return true
	default:
		return false
	}
}

// appendWALFrame appends one framed record to dst.
func appendWALFrame(dst []byte, ftype byte, lsn uint64, payload []byte) []byte {
	body := 1 + 8 + len(payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	dst = append(dst, ftype)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[crcAt+4:], crcTable)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// parseWALFrame decodes the first frame of data. ok=false means the bytes do
// not contain one complete, checksum-valid frame (a torn or corrupt tail).
func parseWALFrame(data []byte) (ftype byte, lsn uint64, payload, rest []byte, ok bool) {
	if len(data) < walFrameMeta {
		return 0, 0, nil, nil, false
	}
	body := int64(binary.LittleEndian.Uint32(data))
	if body < 9 || body > maxWALFrame || int64(len(data)) < 8+body {
		return 0, 0, nil, nil, false
	}
	want := binary.LittleEndian.Uint32(data[4:])
	framed := data[8 : 8+body]
	if crc32.Checksum(framed, crcTable) != want {
		return 0, 0, nil, nil, false
	}
	return framed[0], binary.LittleEndian.Uint64(framed[1:]), framed[9:], data[8+body:], true
}

// appliedLocked is the snapshot the next mutation builds on. Callers hold
// st.mu.
func (st *Store) appliedLocked() *Snapshot {
	if st.applied != nil {
		return st.applied
	}
	return st.snap.Load()
}

// walPut commits one entry install through the log.
func (st *Store) walPut(cp *stats.IndexStats) (uint64, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return 0, fmt.Errorf("catalog: encode entry: %w", err)
	}
	return st.walCommit(walFramePut, payload, func(base *Snapshot) (map[string]*stats.IndexStats, bool) {
		next := cloneEntries(base.entries)
		next[cp.Key()] = cp
		return next, true
	})
}

// walDelete commits one entry removal through the log. A missing key is a
// no-op that neither logs nor bumps the generation.
func (st *Store) walDelete(key string) (bool, uint64, error) {
	gen, err := st.walCommit(walFrameDelete, []byte(key), func(base *Snapshot) (map[string]*stats.IndexStats, bool) {
		if _, ok := base.entries[key]; !ok {
			return nil, false
		}
		next := cloneEntries(base.entries)
		delete(next, key)
		return next, true
	})
	if err != nil {
		return false, 0, err
	}
	if gen == 0 { // aborted: key absent
		return false, st.Generation(), nil
	}
	return true, gen, nil
}

// walReplaceAll commits a full entry-set swap through the log.
func (st *Store) walReplaceAll(next map[string]*stats.IndexStats) (uint64, error) {
	payload, err := encodeEntriesJSON(next)
	if err != nil {
		return 0, err
	}
	return st.walCommit(walFrameReplace, payload, func(*Snapshot) (map[string]*stats.IndexStats, bool) {
		return next, true
	})
}

// walReload re-reads checkpoint + committed log from disk and republishes the
// result as a replace mutation.
func (st *Store) walReload() (uint64, error) {
	c, snapLSN, _, err := loadWithRecoveryLSN(st.fs, st.path)
	if err != nil {
		return 0, fmt.Errorf("catalog: reload: %w", err)
	}
	entries := map[string]*stats.IndexStats{}
	if c != nil {
		for _, k := range c.Keys() {
			if e, err := c.Get(splitKey(k)); err == nil {
				entries[k] = e
			}
		}
	}
	rw := &wal{fs: st.fs, path: st.wal.path}
	if _, _, err := rw.replayOnly(snapLSN, entries); err != nil {
		return 0, fmt.Errorf("catalog: reload: %w", err)
	}
	return st.walReplaceAll(entries)
}

// replayOnly is recover without the repair/open side effects: read the log
// and fold committed frames into entries.
func (w *wal) replayOnly(snapLSN uint64, entries map[string]*stats.IndexStats) (int, uint64, error) {
	maxLSN := snapLSN
	replayed := 0
	data, rerr := w.fs.ReadFile(w.path)
	if errors.Is(rerr, os.ErrNotExist) {
		return 0, maxLSN, nil
	}
	if rerr != nil {
		return 0, 0, rerr
	}
	rest := data
	first := true
	for len(rest) > 0 {
		ftype, lsn, payload, tail, ok := parseWALFrame(rest)
		if !ok {
			break
		}
		if first {
			if ftype != walFrameHeader || string(payload) != walHeaderMagic {
				break
			}
			first = false
		} else if ftype == walFrameHeader {
			break
		} else if ftype == walFrameIngest {
			// Not a catalog mutation: Reload rebuilds entry state only.
		} else if lsn > snapLSN {
			if !applyWALFrame(entries, ftype, payload) {
				break
			}
			replayed++
			if lsn > maxLSN {
				maxLSN = lsn
			}
		}
		rest = tail
	}
	return replayed, maxLSN, nil
}

// encodeEntriesJSON renders an entry set as the canonical catalog JSON.
func encodeEntriesJSON(entries map[string]*stats.IndexStats) ([]byte, error) {
	c := stats.NewCatalog()
	for _, k := range sortedKeys(entries) {
		if err := c.Put(entries[k]); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// walCommit is the mutation front door: build the next snapshot against
// applied state, enqueue the frame, and ride (or drive) a group commit.
// prepare returns ok=false to abort without logging (e.g. deleting a missing
// key); walCommit then returns (0, nil).
func (st *Store) walCommit(ftype byte, payload []byte, prepare func(*Snapshot) (map[string]*stats.IndexStats, bool)) (uint64, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return 0, ErrClosed
	}
	base := st.appliedLocked()
	entries, ok := prepare(base)
	if !ok {
		st.mu.Unlock()
		return 0, nil
	}
	next := newSnapshot(base.gen+1, entries, base)
	st.wal.lsn++
	t := &walTicket{frame: appendWALFrame(nil, ftype, st.wal.lsn, payload), snap: next}
	st.applied = next
	st.walQ.mu.Lock()
	st.walQ.queue = append(st.walQ.queue, t)
	st.walQ.mu.Unlock()
	st.mu.Unlock()

	if err := st.groupCommit(t); err != nil {
		return 0, err
	}
	return next.gen, nil
}

// AppendIngest journals one opaque ingest record through the same
// group-committed log as catalog mutations: when it returns nil the record
// is fsynced and will be handed back by IngestRecords after a crash. It
// publishes no snapshot and bumps no generation — durability is the whole
// contract. Only valid on WAL-backed stores.
func (st *Store) AppendIngest(payload []byte) error {
	if st.wal == nil {
		return errors.New("catalog: not a WAL-backed store")
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	st.wal.lsn++
	t := &walTicket{frame: appendWALFrame(nil, walFrameIngest, st.wal.lsn, payload)}
	st.walQ.mu.Lock()
	st.walQ.queue = append(st.walQ.queue, t)
	st.walQ.mu.Unlock()
	st.mu.Unlock()
	return st.groupCommit(t)
}

// IngestRecords returns the ingest-journal payloads recovered when the
// store was opened, oldest first. The service replays them through its
// accumulators at startup; records acknowledged before a crash are never
// lost. Nil outside WAL mode or when the log held none.
func (st *Store) IngestRecords() [][]byte {
	if st.wal == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([][]byte, len(st.wal.ingest))
	copy(out, st.wal.ingest)
	return out
}

// SetIngestSource registers the callback checkpoints use to learn which
// ingest records are still live (not yet folded into a published refit):
// rotation writes them into the fresh log so a crash after a checkpoint
// still replays them. A nil source (the default) carries nothing.
func (st *Store) SetIngestSource(fn func() [][]byte) {
	st.mu.Lock()
	st.ingestSrc = fn
	st.mu.Unlock()
}

// groupCommit waits for the ticket to become durable, becoming the flush
// leader if nobody else is. The leader drains the whole queue, writes every
// frame, fsyncs ONCE, publishes the batch's final snapshot (success) or
// rolls back (failure), then wakes everyone — including the writers that
// enqueued during its fsync, the first of which leads the next batch.
func (st *Store) groupCommit(t *walTicket) error {
	q := &st.walQ
	q.mu.Lock()
	for !t.done && q.syncing {
		q.cond.Wait()
	}
	if t.done {
		err := t.err
		q.mu.Unlock()
		return err
	}
	q.syncing = true
	batch := q.queue
	q.queue = nil
	q.mu.Unlock()

	err := st.wal.writeBatch(batch)
	var failed []*walTicket
	if err != nil {
		failed = st.rollback(batch, err)
	} else {
		st.publish(batch)
		st.maybeCheckpoint()
	}

	q.mu.Lock()
	for _, bt := range batch {
		bt.done = true
	}
	for _, bt := range failed {
		bt.done = true
	}
	q.syncing = false
	q.cond.Broadcast()
	q.mu.Unlock()
	return t.err
}

// writeBatch appends every ticket's frame and fsyncs once. Leader only.
func (w *wal) writeBatch(batch []*walTicket) error {
	if w.needRepair || w.f == nil {
		if err := w.repair(); err != nil {
			return fmt.Errorf("catalog: wal repair: %w", err)
		}
	}
	w.buf = w.buf[:0]
	for _, t := range batch {
		w.buf = append(w.buf, t.frame...)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.needRepair = true // a partial append may sit past durableOff
		return fmt.Errorf("catalog: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.needRepair = true
		return fmt.Errorf("catalog: wal fsync: %w", err)
	}
	w.durableOff += int64(len(w.buf))
	w.durableLSN = lastLSN(batch[len(batch)-1].frame)
	return nil
}

// lastLSN reads the lsn field back out of an encoded frame.
func lastLSN(frame []byte) uint64 {
	return binary.LittleEndian.Uint64(frame[9:])
}

// repair reopens the log truncated back to the durable offset, discarding a
// possibly-torn tail left by a failed append or fsync. Leader only.
func (w *wal) repair() error {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	if err := w.fs.Truncate(w.path, w.durableOff); err != nil {
		return err
	}
	f, err := w.fs.OpenAppend(w.path)
	if err != nil {
		return err
	}
	w.f = f
	w.needRepair = false
	return nil
}

// publish advances the reader-visible snapshot to the batch's final (now
// durable) state. Ingest-journal tickets carry no snapshot, so the batch's
// last snapshot-bearing ticket wins (a batch may be all-ingest).
func (st *Store) publish(batch []*walTicket) {
	var last *Snapshot
	for i := len(batch) - 1; i >= 0; i-- {
		if batch[i].snap != nil {
			last = batch[i].snap
			break
		}
	}
	st.mu.Lock()
	if last != nil {
		if cur := st.snap.Load(); last.gen > cur.gen {
			st.snap.Store(last)
		}
	}
	st.sinceCheckpoint += len(batch)
	st.mu.Unlock()
}

// rollback fails the batch AND everything enqueued since it was taken (those
// tickets' snapshots build on state that never became durable), rolls
// applied back to the published snapshot, and rewinds the LSN. Returns the
// extra tickets so the leader can mark them done.
func (st *Store) rollback(batch []*walTicket, cause error) []*walTicket {
	st.mu.Lock()
	q := &st.walQ
	q.mu.Lock()
	extra := q.queue
	q.queue = nil
	q.mu.Unlock()
	st.applied = st.snap.Load()
	st.wal.lsn = st.wal.durableLSN
	st.mu.Unlock()
	for _, t := range batch {
		t.err = cause
	}
	for _, t := range extra {
		t.err = fmt.Errorf("catalog: commit depends on a failed group commit: %w", cause)
	}
	return extra
}

// maybeCheckpoint runs an automatic checkpoint when enough commits have
// accumulated. Leader only (st.mu NOT held).
func (st *Store) maybeCheckpoint() {
	st.mu.Lock()
	due := st.checkpointEvery > 0 && st.sinceCheckpoint >= st.checkpointEvery
	st.mu.Unlock()
	if due {
		// Best effort: the commits themselves are durable in the log either
		// way; a failed checkpoint just leaves a longer log to replay.
		_ = st.checkpointAsLeader()
	}
}

// Checkpoint writes the current published snapshot as the checkpoint file
// and rotates the log. It runs as (or serialized with) a group-commit
// leader, so it never races an append.
func (st *Store) Checkpoint() error {
	if st.wal == nil {
		return errors.New("catalog: not a WAL-backed store")
	}
	q := &st.walQ
	q.mu.Lock()
	for q.syncing {
		q.cond.Wait()
	}
	q.syncing = true
	q.mu.Unlock()

	err := st.checkpointAsLeader()

	q.mu.Lock()
	q.syncing = false
	q.cond.Broadcast()
	q.mu.Unlock()
	return err
}

// checkpointAsLeader does the checkpoint + rotation. Caller holds
// leadership (walQ.syncing).
func (st *Store) checkpointAsLeader() error {
	w := st.wal
	snap := st.snap.Load()
	if err := writeAtomicLSN(st.fs, st.path, snap, w.durableLSN, true); err != nil {
		return err
	}
	st.mu.Lock()
	src := st.ingestSrc
	st.mu.Unlock()
	var carry [][]byte
	if src != nil {
		carry = src()
	}
	if err := w.rotate(carry); err != nil {
		return err
	}
	st.mu.Lock()
	st.sinceCheckpoint = 0
	st.mu.Unlock()
	return nil
}

// rotate atomically replaces the log with a fresh one containing a header
// frame plus any still-live ingest records carried forward (stamped with
// the checkpoint LSN — they ride below the replay threshold on purpose,
// since recovery collects ingest frames unconditionally). On failure before
// the rename, the old log remains in place and in use. Leader only.
func (w *wal) rotate(carry [][]byte) error {
	dir := filepath.Dir(w.path)
	tmp, err := w.fs.CreateTemp(dir, ".wal-*.tmp")
	if err != nil {
		return fmt.Errorf("catalog: rotate wal: %w", err)
	}
	tmpName := tmp.Name()
	defer w.fs.Remove(tmpName) // no-op after a successful rename
	hdr := appendWALFrame(nil, walFrameHeader, w.durableLSN, []byte(walHeaderMagic))
	for _, p := range carry {
		hdr = appendWALFrame(hdr, walFrameIngest, w.durableLSN, p)
	}
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: rotate wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: rotate wal fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: rotate wal: %w", err)
	}
	if err := w.fs.Rename(tmpName, w.path); err != nil {
		return fmt.Errorf("catalog: rotate wal: %w", err)
	}
	if err := w.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("catalog: rotate wal syncdir: %w", err)
	}
	// The old handle points at the unlinked inode; all appends must go to
	// the new file from here on.
	if w.f != nil {
		w.f.Close()
	}
	w.f = nil
	w.durableOff = int64(len(hdr))
	w.needRepair = false
	f, err := w.fs.OpenAppend(w.path)
	if err != nil {
		// The next leader's repair() reopens (truncating to the header,
		// which is already the whole file).
		w.needRepair = true
		return fmt.Errorf("catalog: reopen rotated wal: %w", err)
	}
	w.f = f
	return nil
}

// Close flushes leadership, closes the log handle, and fails subsequent
// mutations with ErrClosed. Reads keep serving the last published snapshot.
// Close is a no-op on non-WAL stores.
func (st *Store) Close() error {
	if st.wal == nil {
		return nil
	}
	q := &st.walQ
	q.mu.Lock()
	for q.syncing {
		q.cond.Wait()
	}
	q.syncing = true
	q.mu.Unlock()

	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	var err error
	if st.wal.f != nil {
		err = st.wal.f.Close()
		st.wal.f = nil
	}

	q.mu.Lock()
	q.syncing = false
	q.cond.Broadcast()
	q.mu.Unlock()
	return err
}

// WALStats is a point-in-time view of the log state, for observability and
// tests.
type WALStats struct {
	LSN             uint64 // last assigned LSN
	DurableLSN      uint64 // last fsynced LSN
	SinceCheckpoint int    // commits since the last checkpoint
}

// WALStatsNow reports the current log state; zero outside WAL mode.
func (st *Store) WALStatsNow() WALStats {
	if st.wal == nil {
		return WALStats{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return WALStats{
		LSN:             st.wal.lsn,
		DurableLSN:      st.wal.durableLSN,
		SinceCheckpoint: st.sinceCheckpoint,
	}
}
