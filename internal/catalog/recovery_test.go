package catalog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"epfis/internal/faultfs"
	"epfis/internal/stats"
)

// openedWith builds a file-backed store holding the given generations of
// writes, so the main file and .prev differ.
func openedWith(t *testing.T, path string) *Store {
	t.Helper()
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(entry("lineitem", "partkey", 600)); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWriteLeavesPrevGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	openedWith(t, path)

	// Main file holds both entries; .prev holds the one-entry generation.
	main, err := loadVerified(faultfs.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if main.Len() != 2 {
		t.Fatalf("main has %d entries", main.Len())
	}
	prev, err := loadVerified(faultfs.OS(), PrevPath(path))
	if err != nil {
		t.Fatalf("no retained previous generation: %v", err)
	}
	if prev.Len() != 1 {
		t.Fatalf("prev has %d entries, want 1", prev.Len())
	}
}

func TestTrailerDetectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the JSON payload: still valid JSON, still a
	// valid entry — only the checksum can notice.
	i := bytes.Index(data, []byte(`"pages": 100`))
	if i < 0 {
		t.Fatalf("payload layout changed:\n%s", data)
	}
	data[i+len(`"pages": 10`)] = '1'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadVerified(faultfs.OS(), path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped load err = %v, want ErrCorrupt", err)
	}
}

func TestOpenRecoversFromCorruptMain(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"zero-length", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/3] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing-after-crash", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "catalog.json")
			openedWith(t, path)
			tc.corrupt(t, path)

			st, err := Open(path)
			if err != nil {
				t.Fatalf("Open did not recover: %v", err)
			}
			if !st.Recovered() {
				t.Fatal("Recovered() = false after fallback")
			}
			// The .prev generation held only orders.key.
			if st.Len() != 1 {
				t.Fatalf("recovered %d entries, want 1", st.Len())
			}
			if _, err := st.Get("orders", "key"); err != nil {
				t.Fatalf("recovered store missing orders.key: %v", err)
			}
			// The recovered store must be writable again.
			if _, err := st.Put(entry("fresh", "col", 700)); err != nil {
				t.Fatalf("Put after recovery: %v", err)
			}
		})
	}
}

func TestOpenErrorsWhenMainAndPrevCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	openedWith(t, path)
	for _, p := range []string{path, PrevPath(path)} {
		if err := os.WriteFile(p, []byte("not a catalog"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a catalog with both generations corrupt")
	}
}

func TestOpenMissingBothStartsEmpty(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "catalog.json"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 || st.Recovered() {
		t.Fatalf("fresh store: len=%d recovered=%v", st.Len(), st.Recovered())
	}
}

func TestLegacyFileWithoutTrailerLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	c := stats.NewCatalog()
	if err := c.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFile(path); err != nil { // plain stats format, no trailer
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 || st.Recovered() {
		t.Fatalf("legacy load: len=%d recovered=%v", st.Len(), st.Recovered())
	}
}

func TestTraileredFileLoadsWithPlainStatsLoader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	openedWith(t, path)
	c, err := stats.LoadFile(path)
	if err != nil {
		t.Fatalf("stats.LoadFile on trailered file: %v", err)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCommitAbortsOnInjectedWriteFaults(t *testing.T) {
	for _, op := range []faultfs.Op{
		faultfs.OpCreate, faultfs.OpWrite, faultfs.OpSync,
		faultfs.OpClose, faultfs.OpRename, faultfs.OpSyncDir,
	} {
		t.Run(string(op), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "catalog.json")
			inj := faultfs.NewInjector(faultfs.OS(), 1)
			st, err := OpenFS(path, inj)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Put(entry("orders", "key", 500)); err != nil {
				t.Fatal(err)
			}

			inj.Add(faultfs.Rule{Op: op, Count: -1})
			_, err = st.Put(entry("lineitem", "partkey", 600))
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("Put under %s fault = %v, want ErrInjected", op, err)
			}
			// In-memory view unchanged: the commit aborted whole.
			if st.Len() != 1 || st.Generation() != 1 {
				t.Fatalf("store mutated by failed commit: len=%d gen=%d", st.Len(), st.Generation())
			}
			// On-disk state still serves the last good generation.
			inj.Reset()
			st2, err := Open(path)
			if err != nil {
				t.Fatalf("reopen after %s fault: %v", op, err)
			}
			if _, err := st2.Get("orders", "key"); err != nil {
				t.Fatalf("last good generation lost after %s fault: %v", op, err)
			}
		})
	}
}

func TestPartialWriteNeverPublishes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	inj := faultfs.NewInjector(faultfs.OS(), 1)
	st, err := OpenFS(path, inj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}
	inj.Add(faultfs.Rule{Op: faultfs.OpWrite, Mode: faultfs.ModePartial})
	if _, err := st.Put(entry("lineitem", "partkey", 600)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	inj.Reset()
	c, err := loadVerified(faultfs.OS(), path)
	if err != nil {
		t.Fatalf("main file damaged by torn temp write: %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("main file has %d entries", c.Len())
	}
}

func TestFsyncHappensBeforeRename(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	inj := faultfs.NewInjector(faultfs.OS(), 1)
	st, err := OpenFS(path, inj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}
	var syncAt, renameAt, dirSyncAt int
	for i, e := range inj.Trace() {
		op := strings.Fields(e)[0]
		switch {
		case op == "sync" && syncAt == 0:
			syncAt = i + 1
		case op == "rename" && renameAt == 0:
			renameAt = i + 1
		case op == "syncdir" && dirSyncAt == 0:
			dirSyncAt = i + 1
		}
	}
	if syncAt == 0 || renameAt == 0 || dirSyncAt == 0 {
		t.Fatalf("trace missing sync/rename/syncdir: %v", inj.Trace())
	}
	if !(syncAt < renameAt && renameAt < dirSyncAt) {
		t.Fatalf("durability order violated: sync@%d rename@%d syncdir@%d", syncAt, renameAt, dirSyncAt)
	}
}

func TestReloadRejectsCorruptFileAndKeepsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	st := openedWith(t, path)
	gen := st.Generation()

	if err := os.WriteFile(path, []byte(`{"version":1,"entries":[`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Reload(); err == nil {
		t.Fatal("Reload accepted a corrupt file")
	}
	if st.Generation() != gen || st.Len() != 2 {
		t.Fatalf("snapshot changed by failed reload: gen=%d len=%d", st.Generation(), st.Len())
	}
	if _, err := st.Get("orders", "key"); err != nil {
		t.Fatal("last good snapshot lost after failed reload")
	}
}
