package catalog

// Snapshot streaming hooks for the cluster layer.
//
// ExportSnapshot serializes the current snapshot in the exact trailered
// on-disk format (payload JSON + checksum trailer), so a peer pulling the
// stream gets end-to-end corruption detection for free: the same
// verifyPayload that guards Open guards the network transfer. ImportSnapshot
// is the receiving side — verify, parse, validate, then commit through the
// normal commitLocked path, which recompiles estimators via core.Compile and
// persists through the store's (possibly fault-injected) filesystem.
//
// ContentHash gives both sides a cheap content-addressed identity for
// anti-entropy: it hashes the canonical JSON payload only (no trailer, no
// generation), so two stores holding identical statistics report identical
// hashes regardless of how many local generations each has been through.

import (
	"bytes"
	"fmt"
	"hash/crc32"

	"epfis/internal/stats"
)

// ExportSnapshot serializes the current snapshot in the trailered catalog
// format and reports the generation it captured. The bytes are safe to
// stream as-is; the embedded trailer lets the receiver verify integrity.
func (st *Store) ExportSnapshot() ([]byte, uint64, error) {
	snap := st.Snapshot()
	data, err := encodeSnapshot(snap)
	if err != nil {
		return nil, 0, err
	}
	return data, snap.gen, nil
}

// ImportSnapshot verifies a trailered catalog stream (as produced by
// ExportSnapshot), parses and validates the statistics, and swaps them in as
// a new generation — recompiling estimators through the usual core.Compile
// ingress path and persisting through the store's filesystem. Unlike file
// loading, a stream without a checksum trailer is rejected: network
// transfers get no legacy grace.
func (st *Store) ImportSnapshot(data []byte) (uint64, error) {
	if !bytes.Contains(data, []byte(trailerPrefix)) {
		return 0, fmt.Errorf("%w: snapshot stream has no checksum trailer", ErrCorrupt)
	}
	payload, _, err := verifyPayload(data)
	if err != nil {
		return 0, err
	}
	c, err := stats.Load(bytes.NewReader(payload))
	if err != nil {
		return 0, fmt.Errorf("catalog: import snapshot: %w", err)
	}
	next := map[string]*stats.IndexStats{}
	for _, k := range c.Keys() {
		e, err := c.Get(splitKey(k))
		if err != nil {
			return 0, err
		}
		next[k] = deepCopy(e)
	}
	return st.commitReplace(next)
}

// MergeSnapshot is the partition-tolerant sibling of ImportSnapshot: it
// folds a verified snapshot stream into the current entry set as a UNION
// instead of a replacement. Stream entries win for every key except those
// the skip callback claims (keys with locally-tracked mutation epochs,
// whose precise state converges through hinted handoff rather than bulk
// anti-entropy); local-only keys are never deleted by a merge — deletions
// propagate as explicit replicated mutations, not by absence from a peer's
// snapshot. With an empty local store and a nil skip it degenerates to a
// full adopt, which is the bootstrap/restart case.
func (st *Store) MergeSnapshot(data []byte, skip func(key string) bool) (uint64, error) {
	if !bytes.Contains(data, []byte(trailerPrefix)) {
		return 0, fmt.Errorf("%w: snapshot stream has no checksum trailer", ErrCorrupt)
	}
	payload, _, err := verifyPayload(data)
	if err != nil {
		return 0, err
	}
	c, err := stats.Load(bytes.NewReader(payload))
	if err != nil {
		return 0, fmt.Errorf("catalog: merge snapshot: %w", err)
	}
	next := cloneEntries(st.Snapshot().entries)
	for _, k := range c.Keys() {
		if skip != nil && skip(k) {
			continue
		}
		e, err := c.Get(splitKey(k))
		if err != nil {
			return 0, err
		}
		next[k] = deepCopy(e)
	}
	return st.commitReplace(next)
}

// ContentHash reports the CRC32-C of the canonical JSON payload of the
// current snapshot (rendered "crc32c:xxxxxxxx") and the generation it was
// computed at. Identical statistics hash identically on every node.
func (st *Store) ContentHash() (string, uint64, error) {
	snap := st.Snapshot()
	c, err := snap.Catalog()
	if err != nil {
		return "", 0, err
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return "", 0, err
	}
	return fmt.Sprintf("crc32c:%08x", crc32.Checksum(buf.Bytes(), crcTable)), snap.gen, nil
}

// entryPayload renders the canonical single-entry catalog JSON for e. The
// rendering is deterministic (stats.Catalog.Save sorts keys and indents
// identically everywhere), so two nodes holding the same entry produce
// byte-identical payloads — which is what makes per-entry CRCs comparable
// across the wire.
func entryPayload(e *stats.IndexStats) ([]byte, error) {
	c := stats.NewCatalog()
	if err := c.Put(e); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ExportEntry serializes one entry as a trailered single-entry catalog
// stream — the same framing as ExportSnapshot, so the receiver gets the
// same end-to-end corruption detection on a delta fetch as on a full pull.
// Returns ErrNotFound (wrapped) when the key is absent.
func (st *Store) ExportEntry(key string) ([]byte, uint64, error) {
	snap := st.Snapshot()
	e, ok := snap.entries[key]
	if !ok {
		return nil, snap.gen, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	payload, err := entryPayload(e)
	if err != nil {
		return nil, 0, err
	}
	crc := crc32.Checksum(payload, crcTable)
	buf := bytes.NewBuffer(payload)
	fmt.Fprintf(buf, "%scrc32c=%08x bytes=%d\n", trailerPrefix, crc, len(payload))
	return buf.Bytes(), snap.gen, nil
}

// EntryDigests reports, for every entry, the CRC32-C of its canonical
// single-entry payload (the exact bytes ExportEntry would frame), plus the
// generation the digests describe. Two nodes agree on a key's digest iff
// they hold byte-identical statistics for it, so a digest diff identifies
// precisely the divergent entries.
func (st *Store) EntryDigests() (map[string]uint32, uint64, error) {
	snap := st.Snapshot()
	out := make(map[string]uint32, len(snap.entries))
	for k, e := range snap.entries {
		p, err := entryPayload(e)
		if err != nil {
			return nil, 0, err
		}
		out[k] = crc32.Checksum(p, crcTable)
	}
	return out, snap.gen, nil
}

// MergeEntries folds verified trailered entry streams (as produced by
// ExportEntry) into the current entry set as a UNION, committing one
// generation for the whole batch. Semantics mirror MergeSnapshot: stream
// entries win except for keys the skip callback claims, and local-only keys
// are never deleted. An empty batch (or one fully skipped) commits nothing
// and returns the current generation.
func (st *Store) MergeEntries(streams [][]byte, skip func(key string) bool) (uint64, error) {
	incoming := map[string]*stats.IndexStats{}
	for _, data := range streams {
		if !bytes.Contains(data, []byte(trailerPrefix)) {
			return 0, fmt.Errorf("%w: entry stream has no checksum trailer", ErrCorrupt)
		}
		payload, _, err := verifyPayload(data)
		if err != nil {
			return 0, err
		}
		c, err := stats.Load(bytes.NewReader(payload))
		if err != nil {
			return 0, fmt.Errorf("catalog: merge entries: %w", err)
		}
		for _, k := range c.Keys() {
			if skip != nil && skip(k) {
				continue
			}
			e, err := c.Get(splitKey(k))
			if err != nil {
				return 0, err
			}
			incoming[k] = deepCopy(e)
		}
	}
	if len(incoming) == 0 {
		return st.Generation(), nil
	}
	next := cloneEntries(st.Snapshot().entries)
	for k, e := range incoming {
		next[k] = e
	}
	return st.commitReplace(next)
}
