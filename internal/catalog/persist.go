package catalog

// Crash-safe persistence for the catalog file.
//
// On disk a catalog is the stats-package JSON document followed by one
// checksum trailer line:
//
//	{ "version": 1, "entries": [ ... ] }
//	#epfis-catalog v1 crc32c=xxxxxxxx bytes=NNN
//
// The trailer pins the payload length and its CRC32-C, so truncation and
// bit rot are detected even when the damaged bytes still parse as JSON.
// Files without a trailer (hand-edited, or written by `epfis gen` /
// stats.SaveFile) load as legacy files on the JSON parser's own validation;
// json.Decoder reads exactly one value, so trailered files remain loadable
// by plain stats.LoadFile too — the formats are mutually compatible.
//
// Writes follow the full crash-safety sequence: serialize to a temp file in
// the target directory, fsync it, retain the previous generation as
// <path>.prev, rename the temp file into place, and fsync the directory.
// Recovery (Open) falls back to the .prev generation when the main file is
// corrupt, truncated, or lost mid-rename.

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"epfis/internal/faultfs"
	"epfis/internal/stats"
)

// ErrCorrupt is wrapped by load failures caused by a checksum mismatch, a
// truncated payload, or a malformed trailer.
var ErrCorrupt = errors.New("catalog: corrupt catalog file")

// trailerPrefix starts the checksum line; the v1 suffix versions the
// trailer format itself (the payload format is versioned inside the JSON).
const trailerPrefix = "#epfis-catalog v1 "

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PrevPath is the retained previous-generation backup for a catalog path.
func PrevPath(path string) string { return path + ".prev" }

// encodeSnapshot serializes a snapshot to the trailered on-disk format.
func encodeSnapshot(snap *Snapshot) ([]byte, error) {
	c, err := snap.Catalog()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return nil, err
	}
	payload := buf.Len()
	fmt.Fprintf(&buf, "%scrc32c=%08x bytes=%d\n",
		trailerPrefix, crc32.Checksum(buf.Bytes()[:payload], crcTable), payload)
	return buf.Bytes(), nil
}

// verifyPayload validates the trailer (when present) and returns the JSON
// payload bytes. Legacy files without a trailer pass through whole.
func verifyPayload(data []byte) ([]byte, error) {
	idx := bytes.LastIndex(data, []byte(trailerPrefix))
	if idx < 0 {
		return data, nil // legacy file: JSON validation is the only guard
	}
	line := strings.TrimSuffix(string(data[idx+len(trailerPrefix):]), "\n")
	if strings.ContainsAny(line, "\n\r") {
		return nil, fmt.Errorf("%w: data after checksum trailer", ErrCorrupt)
	}
	var crc uint64
	var n int
	ok := false
	if c, rest, found := strings.Cut(line, " "); found {
		if cv, err := strconv.ParseUint(strings.TrimPrefix(c, "crc32c="), 16, 32); err == nil && strings.HasPrefix(c, "crc32c=") {
			if bv, err := strconv.Atoi(strings.TrimPrefix(rest, "bytes=")); err == nil && strings.HasPrefix(rest, "bytes=") {
				crc, n, ok = cv, bv, true
			}
		}
	}
	if !ok {
		return nil, fmt.Errorf("%w: malformed checksum trailer %q", ErrCorrupt, line)
	}
	if n != idx {
		return nil, fmt.Errorf("%w: payload is %d bytes, trailer pins %d (truncated or spliced)", ErrCorrupt, idx, n)
	}
	payload := data[:idx]
	if got := crc32.Checksum(payload, crcTable); uint64(got) != crc {
		return nil, fmt.Errorf("%w: crc32c %08x, trailer pins %08x", ErrCorrupt, got, crc)
	}
	return payload, nil
}

// loadVerified reads path through fsys, checks the trailer, and parses the
// payload as a stats catalog.
func loadVerified(fsys faultfs.FS, path string) (*stats.Catalog, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := verifyPayload(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	c, err := stats.Load(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// loadWithRecovery loads the catalog at path, falling back to the retained
// previous generation when the main file is corrupt, truncated, or missing
// after a crashed write. It returns (nil, false, nil) when neither file
// exists (a fresh store), and the main file's error when no fallback can
// serve.
func loadWithRecovery(fsys faultfs.FS, path string) (c *stats.Catalog, recovered bool, err error) {
	c, mainErr := loadVerified(fsys, path)
	if mainErr == nil {
		return c, false, nil
	}
	// Corrupt, truncated, or missing after a crashed write: adopt the
	// retained previous generation when it verifies.
	prev, prevErr := loadVerified(fsys, PrevPath(path))
	if prevErr == nil {
		return prev, true, nil
	}
	if errors.Is(mainErr, os.ErrNotExist) && errors.Is(prevErr, os.ErrNotExist) {
		return nil, false, nil
	}
	return nil, false, mainErr
}

// writeAtomicFS persists the snapshot crash-safely: temp file + fsync,
// retain the previous generation as .prev, rename into place, fsync the
// directory. Any failure leaves the previous on-disk generation loadable
// (directly or via .prev recovery).
func writeAtomicFS(fsys faultfs.FS, path string, snap *Snapshot) error {
	data, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".catalog-*.tmp")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	// fsync before rename: the rename must never publish bytes that are
	// still only in the page cache.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	// Retain the current generation before replacing it. A crash between
	// the two renames leaves no main file, which recovery serves from
	// .prev.
	if err := fsys.Rename(path, PrevPath(path)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("catalog: retain previous generation: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("catalog: sync dir: %w", err)
	}
	return nil
}
