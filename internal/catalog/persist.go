package catalog

// Crash-safe persistence for the catalog file.
//
// On disk a catalog is the stats-package JSON document followed by one
// checksum trailer line:
//
//	{ "version": 1, "entries": [ ... ] }
//	#epfis-catalog v1 crc32c=xxxxxxxx bytes=NNN
//
// The trailer pins the payload length and its CRC32-C, so truncation and
// bit rot are detected even when the damaged bytes still parse as JSON.
// Files without a trailer (hand-edited, or written by `epfis gen` /
// stats.SaveFile) load as legacy files on the JSON parser's own validation;
// json.Decoder reads exactly one value, so trailered files remain loadable
// by plain stats.LoadFile too — the formats are mutually compatible.
//
// Writes follow the full crash-safety sequence: serialize to a temp file in
// the target directory, fsync it, retain the previous generation as
// <path>.prev, rename the temp file into place, and fsync the directory.
// Recovery (Open) falls back to the .prev generation when the main file is
// corrupt, truncated, or lost mid-rename.

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"epfis/internal/faultfs"
	"epfis/internal/stats"
)

// ErrCorrupt is wrapped by load failures caused by a checksum mismatch, a
// truncated payload, or a malformed trailer.
var ErrCorrupt = errors.New("catalog: corrupt catalog file")

// trailerPrefix starts the checksum line; the v1 suffix versions the
// trailer format itself (the payload format is versioned inside the JSON).
const trailerPrefix = "#epfis-catalog v1 "

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PrevPath is the retained previous-generation backup for a catalog path.
func PrevPath(path string) string { return path + ".prev" }

// encodeSnapshot serializes a snapshot to the trailered on-disk format.
func encodeSnapshot(snap *Snapshot) ([]byte, error) {
	return encodeSnapshotLSN(snap, 0, false)
}

// encodeSnapshotLSN is encodeSnapshot with an optional lsn trailer field —
// the WAL checkpoint form, pinning the log position the snapshot covers so
// recovery replays only the frames past it. Legacy writes omit the field and
// the formats stay mutually loadable.
func encodeSnapshotLSN(snap *Snapshot, lsn uint64, withLSN bool) ([]byte, error) {
	c, err := snap.Catalog()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return nil, err
	}
	payload := buf.Len()
	crc := crc32.Checksum(buf.Bytes()[:payload], crcTable)
	if withLSN {
		fmt.Fprintf(&buf, "%scrc32c=%08x bytes=%d lsn=%d\n", trailerPrefix, crc, payload, lsn)
	} else {
		fmt.Fprintf(&buf, "%scrc32c=%08x bytes=%d\n", trailerPrefix, crc, payload)
	}
	return buf.Bytes(), nil
}

// verifyPayload validates the trailer (when present) and returns the JSON
// payload bytes plus the trailer's WAL position (0 when absent — pre-WAL
// files cover no log). Legacy files without a trailer pass through whole.
func verifyPayload(data []byte) ([]byte, uint64, error) {
	idx := bytes.LastIndex(data, []byte(trailerPrefix))
	if idx < 0 {
		return data, 0, nil // legacy file: JSON validation is the only guard
	}
	line := strings.TrimSuffix(string(data[idx+len(trailerPrefix):]), "\n")
	if strings.ContainsAny(line, "\n\r") {
		return nil, 0, fmt.Errorf("%w: data after checksum trailer", ErrCorrupt)
	}
	fields := strings.Split(line, " ")
	ok := len(fields) == 2 || len(fields) == 3
	var crc uint64
	var n int
	var lsn uint64
	if ok {
		cv, errC := strconv.ParseUint(strings.TrimPrefix(fields[0], "crc32c="), 16, 32)
		bv, errB := strconv.Atoi(strings.TrimPrefix(fields[1], "bytes="))
		ok = errC == nil && errB == nil &&
			strings.HasPrefix(fields[0], "crc32c=") && strings.HasPrefix(fields[1], "bytes=")
		crc, n = cv, bv
		if ok && len(fields) == 3 {
			lv, errL := strconv.ParseUint(strings.TrimPrefix(fields[2], "lsn="), 10, 64)
			ok = errL == nil && strings.HasPrefix(fields[2], "lsn=")
			lsn = lv
		}
	}
	if !ok {
		return nil, 0, fmt.Errorf("%w: malformed checksum trailer %q", ErrCorrupt, line)
	}
	if n != idx {
		return nil, 0, fmt.Errorf("%w: payload is %d bytes, trailer pins %d (truncated or spliced)", ErrCorrupt, idx, n)
	}
	payload := data[:idx]
	if got := crc32.Checksum(payload, crcTable); uint64(got) != crc {
		return nil, 0, fmt.Errorf("%w: crc32c %08x, trailer pins %08x", ErrCorrupt, got, crc)
	}
	return payload, lsn, nil
}

// loadVerified reads path through fsys, checks the trailer, and parses the
// payload as a stats catalog.
func loadVerified(fsys faultfs.FS, path string) (*stats.Catalog, error) {
	c, _, err := loadVerifiedLSN(fsys, path)
	return c, err
}

// loadVerifiedLSN is loadVerified plus the trailer's WAL position.
func loadVerifiedLSN(fsys faultfs.FS, path string) (*stats.Catalog, uint64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	payload, lsn, err := verifyPayload(data)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	c, err := stats.Load(bytes.NewReader(payload))
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return c, lsn, nil
}

// loadWithRecovery loads the catalog at path, falling back to the retained
// previous generation when the main file is corrupt, truncated, or missing
// after a crashed write. It returns (nil, false, nil) when neither file
// exists (a fresh store), and the main file's error when no fallback can
// serve.
func loadWithRecovery(fsys faultfs.FS, path string) (c *stats.Catalog, recovered bool, err error) {
	c, _, recovered, err = loadWithRecoveryLSN(fsys, path)
	return c, recovered, err
}

// loadWithRecoveryLSN is loadWithRecovery plus the served file's WAL position.
func loadWithRecoveryLSN(fsys faultfs.FS, path string) (c *stats.Catalog, lsn uint64, recovered bool, err error) {
	c, lsn, mainErr := loadVerifiedLSN(fsys, path)
	if mainErr == nil {
		return c, lsn, false, nil
	}
	// Corrupt, truncated, or missing after a crashed write: adopt the
	// retained previous generation when it verifies.
	prev, prevLSN, prevErr := loadVerifiedLSN(fsys, PrevPath(path))
	if prevErr == nil {
		return prev, prevLSN, true, nil
	}
	if errors.Is(mainErr, os.ErrNotExist) && errors.Is(prevErr, os.ErrNotExist) {
		return nil, 0, false, nil
	}
	return nil, 0, false, mainErr
}

// writeAtomicFS persists the snapshot crash-safely: temp file + fsync,
// retain the previous generation as .prev, rename into place, fsync the
// directory. Any failure leaves the previous on-disk generation loadable
// (directly or via .prev recovery).
func writeAtomicFS(fsys faultfs.FS, path string, snap *Snapshot) error {
	return writeAtomicLSN(fsys, path, snap, 0, false)
}

// writeAtomicLSN is writeAtomicFS with the WAL-position trailer field — the
// checkpoint writer.
func writeAtomicLSN(fsys faultfs.FS, path string, snap *Snapshot, lsn uint64, withLSN bool) error {
	data, err := encodeSnapshotLSN(snap, lsn, withLSN)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".catalog-*.tmp")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: %w", err)
	}
	// fsync before rename: the rename must never publish bytes that are
	// still only in the page cache.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	// Retain the current generation before replacing it. A crash between
	// the two renames leaves no main file, which recovery serves from
	// .prev.
	if err := fsys.Rename(path, PrevPath(path)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("catalog: retain previous generation: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("catalog: sync dir: %w", err)
	}
	return nil
}
