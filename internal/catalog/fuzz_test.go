package catalog

import (
	"os"
	"path/filepath"
	"testing"

	"epfis/internal/faultfs"
)

// FuzzOpenCatalogStore hardens store recovery against arbitrary catalog
// file contents: truncations, bit flips, spliced trailers, zero-length
// files. Invariants:
//
//   - Open never panics: it recovers or rejects.
//   - With a verified previous generation retained on disk, Open ALWAYS
//     succeeds — either the main bytes verify, or recovery serves .prev.
//   - Whatever Open accepts is a working store: readable and writable.
func FuzzOpenCatalogStore(f *testing.F) {
	// Seed with a genuine trailered file and characteristic damage shapes.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.json")
	st, err := Open(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := st.Put(entry("orders", "key", 500)); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])       // truncated
	f.Add(good[:0])                 // zero-length
	f.Add([]byte(`not json`))       // garbage
	f.Add([]byte(`{"version":1,`))  // cut JSON
	f.Add([]byte(`{"version":99}`)) // future format
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		base := t.TempDir()
		path := filepath.Join(base, "catalog.json")

		// Case 1: no backup — Open recovers or rejects, never panics.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if st, err := Open(path); err == nil {
			exercise(t, st)
		}

		// Case 2: a good .prev generation is retained. Open must succeed —
		// from the main bytes when they verify, from .prev otherwise.
		if err := os.WriteFile(PrevPath(path), good, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path)
		if err != nil {
			t.Fatalf("Open failed despite a good previous generation: %v\nmain bytes: %q", err, data)
		}
		exercise(t, st)
	})
}

// exercise proves an opened store actually works: snapshot reads and a
// persisted write.
func exercise(t *testing.T, st *Store) {
	t.Helper()
	snap := st.Snapshot()
	for _, k := range snap.Keys() {
		if _, ok := snap.Lookup(k); !ok {
			t.Fatalf("snapshot key %q does not resolve", k)
		}
	}
	if _, err := st.Put(entry("fuzz", "probe", 700)); err != nil {
		t.Fatalf("Put on opened store: %v", err)
	}
	if _, err := loadVerified(faultfs.OS(), st.Path()); err != nil {
		t.Fatalf("file written by opened store does not verify: %v", err)
	}
}
