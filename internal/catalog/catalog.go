// Package catalog provides a concurrent, versioned statistics-catalog store
// on top of package stats, designed for the estimation service's read-heavy
// workload: Est-IO lookups happen on the planning hot path of every query,
// while statistics installs and refreshes (LRU-Fit reruns) are rare.
//
// The concurrency model is copy-on-write snapshots:
//
//   - Readers call Snapshot (or the Get/Keys/Len conveniences) and receive an
//     immutable view through a single atomic pointer load — no locks, no
//     contention, no allocation. Entries inside a snapshot are shared and
//     must be treated as read-only.
//
//   - Writers (Put, Delete, ReplaceAll, Reload) serialize behind a mutex,
//     build a fresh entry map from the current one, persist it, and publish
//     the new snapshot with one atomic store. A reader that loaded the old
//     snapshot keeps a consistent view for as long as it holds the pointer.
//
// Every published snapshot carries a monotonically increasing generation
// number, so callers (for example the service's estimate memo cache) can key
// derived state by generation and have it invalidate naturally when
// statistics change.
//
// When the store is bound to a file path, writes persist the whole catalog
// crash-safely: a CRC32-C checksum trailer pins the payload, the temp file
// is fsynced before the atomic rename, the previous generation is retained
// as <path>.prev, and the directory is fsynced after the rename. Open
// recovers from a corrupt, truncated, or crash-orphaned catalog file by
// falling back to the retained previous generation (see persist.go), and
// Reload re-reads the file in place so statistics refreshed out-of-process
// swap in without downtime. All filesystem access goes through a
// faultfs.FS, so chaos tests (and the EPFIS_FAULTS knob) can inject torn
// writes, failed fsyncs, and slow disks deterministically.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"epfis/internal/core"
	"epfis/internal/curvefit"
	"epfis/internal/faultfs"
	"epfis/internal/histogram"
	"epfis/internal/stats"
)

// ErrNoPath is returned by Reload and Save on a store that is not bound to a
// catalog file.
var ErrNoPath = errors.New("catalog: store has no backing file")

// ErrNotFound aliases the stats-package sentinel so callers can test lookup
// misses without importing both packages.
var ErrNotFound = stats.ErrNotFound

// Snapshot is an immutable point-in-time view of the catalog. All methods
// are safe for concurrent use; the *stats.IndexStats values it returns are
// shared across snapshots and must not be mutated.
type Snapshot struct {
	gen      uint64
	entries  map[string]*stats.IndexStats
	compiled map[string]*core.CompiledEstimator // same keys as entries
	keys     []string                           // sorted
}

// Generation reports the snapshot's version number. Generations increase by
// one per committed write; generation 0 is the empty store.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Len reports the number of catalog entries.
func (s *Snapshot) Len() int { return len(s.entries) }

// Keys lists the entry keys ("table.column") in sorted order. The returned
// slice is a copy and may be retained or mutated by the caller.
func (s *Snapshot) Keys() []string {
	ks := make([]string, len(s.keys))
	copy(ks, s.keys)
	return ks
}

// Get returns the entry for table.column, or an error wrapping ErrNotFound.
// The returned entry is shared; treat it as read-only.
func (s *Snapshot) Get(table, column string) (*stats.IndexStats, error) {
	e, ok := s.entries[table+"."+column]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNotFound, table, column)
	}
	return e, nil
}

// Lookup is Get by precomputed key, returning ok = false on a miss.
func (s *Snapshot) Lookup(key string) (*stats.IndexStats, bool) {
	e, ok := s.entries[key]
	return e, ok
}

// Compiled returns the pre-compiled Est-IO estimator for table.column, built
// once when the snapshot was published (off the request path). The serving
// hot path uses this instead of re-validating the raw entry per call. It is a
// plain map lookup: no locks, no allocation for short keys.
func (s *Snapshot) Compiled(table, column string) (*core.CompiledEstimator, bool) {
	ce, ok := s.compiled[table+"."+column]
	return ce, ok
}

// CompiledByKey is Compiled by precomputed "table.column" key.
func (s *Snapshot) CompiledByKey(key string) (*core.CompiledEstimator, bool) {
	ce, ok := s.compiled[key]
	return ce, ok
}

// Catalog materializes the snapshot as a plain stats.Catalog (copying every
// entry), for interoperation with code written against the non-concurrent
// type.
func (s *Snapshot) Catalog() (*stats.Catalog, error) {
	c := stats.NewCatalog()
	for _, k := range s.keys {
		if err := c.Put(s.entries[k]); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Store is the concurrent, versioned catalog store. The zero value is not
// usable; construct with NewStore or Open. Methods are safe for concurrent
// use by any number of goroutines.
type Store struct {
	snap atomic.Pointer[Snapshot]

	mu        sync.Mutex // serializes writers and persistence
	path      string     // "" = in-memory only
	fs        faultfs.FS // filesystem for persistence (faultfs.OS outside tests)
	recovered bool       // Open served the .prev generation

	// WAL mode (nil wal = legacy rename-per-commit persistence). applied is
	// the newest built snapshot — possibly not yet durable — that the next
	// mutation stacks on; snap only ever advances to fsynced state. Both are
	// guarded by mu; see wal.go for the group-commit protocol.
	wal             *wal
	walQ            walQueue
	applied         *Snapshot
	checkpointEvery int
	sinceCheckpoint int
	closed          bool

	// ingestSrc reports the still-live ingest-journal records a checkpoint
	// must carry into the rotated log (see SetIngestSource in wal.go).
	ingestSrc func() [][]byte
}

// NewStore returns an empty in-memory store (no persistence).
func NewStore() *Store {
	st := &Store{fs: faultfs.OS()}
	st.snap.Store(newSnapshot(0, map[string]*stats.IndexStats{}, nil))
	return st
}

// Open binds a store to a catalog file. If the file exists it is loaded,
// checksum-verified, and validated (generation 1); a corrupt or truncated
// file falls back to the retained previous generation; if neither exists
// the store starts empty and the file is created on the first write.
func Open(path string) (*Store, error) { return OpenFS(path, faultfs.OS()) }

// OpenFS is Open over an explicit filesystem — the injection point for
// fault-injected chaos tests and the EPFIS_FAULTS knob.
func OpenFS(path string, fsys faultfs.FS) (*Store, error) {
	st := NewStore()
	st.path = path
	st.fs = fsys
	c, recovered, err := loadWithRecovery(fsys, path)
	if err != nil {
		return nil, err
	}
	st.recovered = recovered
	if c != nil {
		st.snap.Store(snapshotOf(c, 1))
	}
	return st, nil
}

// Path reports the backing catalog file, or "" for an in-memory store.
func (st *Store) Path() string { return st.path }

// Recovered reports whether Open could not verify the main catalog file and
// served the retained previous generation instead.
func (st *Store) Recovered() bool { return st.recovered }

// Snapshot returns the current immutable view. This is a single atomic load;
// call it once per request and perform all related lookups against the same
// snapshot for a consistent read.
func (st *Store) Snapshot() *Snapshot { return st.snap.Load() }

// Generation reports the current snapshot's generation.
func (st *Store) Generation() uint64 { return st.Snapshot().gen }

// Len reports the current number of entries.
func (st *Store) Len() int { return st.Snapshot().Len() }

// Keys lists the current entry keys in sorted order.
func (st *Store) Keys() []string { return st.Snapshot().Keys() }

// Get returns the current entry for table.column. The returned entry is
// shared; treat it as read-only.
func (st *Store) Get(table, column string) (*stats.IndexStats, error) {
	return st.Snapshot().Get(table, column)
}

// Put validates and installs (or replaces) an entry, returning the new
// generation. The entry is deep-copied, so the caller may keep mutating its
// own copy.
func (st *Store) Put(e *stats.IndexStats) (uint64, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	cp := deepCopy(e)
	if st.wal != nil {
		return st.walPut(cp)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.snap.Load()
	next := cloneEntries(cur.entries)
	next[cp.Key()] = cp
	return st.commitLocked(next)
}

// Delete removes the entry for table.column, reporting whether it existed.
// Deleting a missing entry is a no-op that does not bump the generation.
func (st *Store) Delete(table, column string) (bool, uint64, error) {
	key := table + "." + column
	if st.wal != nil {
		return st.walDelete(key)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.snap.Load()
	if _, ok := cur.entries[key]; !ok {
		return false, cur.gen, nil
	}
	next := cloneEntries(cur.entries)
	delete(next, key)
	gen, err := st.commitLocked(next)
	if err != nil {
		return false, cur.gen, err
	}
	return true, gen, nil
}

// ReplaceAll swaps the entire catalog contents for c's entries in one
// generation step (c itself is not retained).
func (st *Store) ReplaceAll(c *stats.Catalog) (uint64, error) {
	next := map[string]*stats.IndexStats{}
	for _, k := range c.Keys() {
		e, err := c.Get(splitKey(k))
		if err != nil {
			return 0, err
		}
		next[k] = deepCopy(e)
	}
	return st.commitReplace(next)
}

// commitReplace installs a full entry set as one generation step, routing
// through the WAL when the store is WAL-backed.
func (st *Store) commitReplace(next map[string]*stats.IndexStats) (uint64, error) {
	if st.wal != nil {
		return st.walReplaceAll(next)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.commitLocked(next)
}

// Reload re-reads the backing catalog file and publishes its contents as a
// new generation, so statistics refreshed by an out-of-process LRU-Fit run
// swap in without downtime. In-flight readers keep their old snapshot.
// A WAL-backed store reloads the checkpoint plus the committed log tail and
// republishes the result through the log, so the reload itself is a durable
// mutation like any other.
func (st *Store) Reload() (uint64, error) {
	if st.path == "" {
		return 0, ErrNoPath
	}
	if st.wal != nil {
		return st.walReload()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	c, err := loadVerified(st.fs, st.path)
	if err != nil {
		// Never adopt bytes that fail verification: the current snapshot
		// stays published, and the caller (the service's degraded mode)
		// decides how loudly to surface the failure.
		return 0, fmt.Errorf("catalog: reload: %w", err)
	}
	next := snapshotOf(c, st.snap.Load().gen+1)
	st.snap.Store(next)
	return next.gen, nil
}

// Save persists the current snapshot to the backing file (atomic rename).
// Writes already persist implicitly; Save is for forcing a write after
// out-of-band changes or for checkpointing an Open-on-missing-file store.
// On a WAL-backed store, Save forces a checkpoint and rotates the log.
func (st *Store) Save() error {
	if st.path == "" {
		return ErrNoPath
	}
	if st.wal != nil {
		return st.Checkpoint()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return writeAtomicFS(st.fs, st.path, st.snap.Load())
}

// commitLocked persists (when file-backed) and publishes a new snapshot
// built from entries. Persistence failures abort the commit: the in-memory
// view and the file never diverge. Callers must hold st.mu.
func (st *Store) commitLocked(entries map[string]*stats.IndexStats) (uint64, error) {
	cur := st.snap.Load()
	next := newSnapshot(cur.gen+1, entries, cur)
	if st.path != "" {
		if err := writeAtomicFS(st.fs, st.path, next); err != nil {
			return 0, err
		}
	}
	st.snap.Store(next)
	return next.gen, nil
}

func snapshotOf(c *stats.Catalog, gen uint64) *Snapshot {
	entries := map[string]*stats.IndexStats{}
	for _, k := range c.Keys() {
		if e, err := c.Get(splitKey(k)); err == nil {
			entries[k] = e
		}
	}
	return newSnapshot(gen, entries, nil)
}

// newSnapshot assembles a snapshot, compiling an Est-IO estimator for every
// entry. Compilation happens here — on the writer's (or loader's) path, never
// on a request path — and entries carried over unchanged from prev (same
// pointer, thanks to the copy-on-write entry sharing in cloneEntries) reuse
// prev's compiled estimator instead of recompiling. An entry that fails to
// compile (impossible for entries that passed validation, but recovery paths
// are deliberately paranoid) simply has no compiled form; readers fall back
// to interpreted EstIO for it.
func newSnapshot(gen uint64, entries map[string]*stats.IndexStats, prev *Snapshot) *Snapshot {
	s := &Snapshot{
		gen:      gen,
		entries:  entries,
		compiled: make(map[string]*core.CompiledEstimator, len(entries)),
		keys:     sortedKeys(entries),
	}
	for k, e := range entries {
		if prev != nil {
			if pe, ok := prev.entries[k]; ok && pe == e {
				if ce, ok := prev.compiled[k]; ok {
					s.compiled[k] = ce
					continue
				}
			}
		}
		if ce, err := core.Compile(e, core.Options{}); err == nil {
			s.compiled[k] = ce
		}
	}
	return s
}

func cloneEntries(m map[string]*stats.IndexStats) map[string]*stats.IndexStats {
	out := make(map[string]*stats.IndexStats, len(m)+1)
	for k, v := range m {
		out[k] = v // entries are immutable; share them across generations
	}
	return out
}

// deepCopy clones an entry including its slice-backed fields, so snapshot
// entries never alias caller-owned memory.
func deepCopy(e *stats.IndexStats) *stats.IndexStats {
	cp := *e
	if e.Curve.Knots != nil {
		cp.Curve.Knots = append([]curvefit.Point(nil), e.Curve.Knots...)
	}
	if e.KeyHistogram != nil {
		cp.KeyHistogram = append([]histogram.Bucket(nil), e.KeyHistogram...)
	}
	return &cp
}

func sortedKeys(m map[string]*stats.IndexStats) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func splitKey(key string) (table, column string) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}
