package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"epfis/internal/core"
	"epfis/internal/curvefit"
	"epfis/internal/stats"
)

// entry builds a valid catalog entry by hand; fmin lets tests vary the curve
// so concurrent readers can observe distinct generations.
func entry(table, column string, fmin int64) *stats.IndexStats {
	return &stats.IndexStats{
		Table:  table,
		Column: column,
		T:      100,
		N:      1000,
		I:      100,
		BMin:   12,
		BMax:   100,
		FMin:   fmin,
		C:      0.5,
		Curve: curvefit.PolyLine{Knots: []curvefit.Point{
			{X: 12, Y: float64(fmin)},
			{X: 100, Y: 100},
		}},
		GridPoints:  2,
		CollectedAt: time.Unix(0, 0).UTC(),
	}
}

func TestStoreBasics(t *testing.T) {
	st := NewStore()
	if st.Generation() != 0 || st.Len() != 0 {
		t.Fatalf("empty store gen=%d len=%d", st.Generation(), st.Len())
	}
	if _, err := st.Get("orders", "key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store err = %v, want ErrNotFound", err)
	}

	gen, err := st.Put(entry("orders", "key", 500))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || st.Generation() != 1 {
		t.Fatalf("after first Put gen = %d / %d, want 1", gen, st.Generation())
	}
	if _, err := st.Put(entry("orders", "custno", 600)); err != nil {
		t.Fatal(err)
	}
	if got := st.Keys(); len(got) != 2 || got[0] != "orders.custno" || got[1] != "orders.key" {
		t.Fatalf("Keys = %v", got)
	}

	e, err := st.Get("orders", "key")
	if err != nil {
		t.Fatal(err)
	}
	if e.FMin != 500 {
		t.Fatalf("FMin = %d, want 500", e.FMin)
	}

	// Put validates.
	bad := entry("x", "y", 500)
	bad.T = 0
	if _, err := st.Put(bad); err == nil {
		t.Fatal("Put of invalid entry succeeded")
	}

	ok, gen, err := st.Delete("orders", "key")
	if err != nil || !ok {
		t.Fatalf("Delete = (%v, %v)", ok, err)
	}
	if gen != 3 || st.Len() != 1 {
		t.Fatalf("after delete gen=%d len=%d", gen, st.Len())
	}
	// Deleting a missing entry is a generation-preserving no-op.
	ok, gen, err = st.Delete("orders", "key")
	if err != nil || ok || gen != 3 {
		t.Fatalf("second Delete = (%v, %d, %v)", ok, gen, err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	st := NewStore()
	if _, err := st.Put(entry("t", "a", 500)); err != nil {
		t.Fatal(err)
	}
	old := st.Snapshot()
	if _, err := st.Put(entry("t", "b", 600)); err != nil {
		t.Fatal(err)
	}
	if old.Len() != 1 || old.Generation() != 1 {
		t.Fatalf("old snapshot mutated: len=%d gen=%d", old.Len(), old.Generation())
	}
	if st.Snapshot().Len() != 2 {
		t.Fatalf("new snapshot len = %d", st.Snapshot().Len())
	}
}

func TestPutDeepCopies(t *testing.T) {
	st := NewStore()
	mine := entry("t", "a", 500)
	if _, err := st.Put(mine); err != nil {
		t.Fatal(err)
	}
	mine.Curve.Knots[0].Y = -1 // caller keeps mutating its copy
	mine.FMin = -1
	got, err := st.Get("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if got.FMin != 500 || got.Curve.Knots[0].Y != 500 {
		t.Fatalf("stored entry aliases caller memory: %+v", got)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatalf("missing file should open empty, len = %d", st.Len())
	}
	if _, err := st.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(entry("orders", "custno", 600)); err != nil {
		t.Fatal(err)
	}

	// No stray temp files after atomic renames.
	names, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", de.Name())
		}
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 || re.Generation() != 1 {
		t.Fatalf("reopened store len=%d gen=%d", re.Len(), re.Generation())
	}
	e, err := re.Get("orders", "key")
	if err != nil {
		t.Fatal(err)
	}
	if e.FMin != 500 {
		t.Fatalf("reloaded FMin = %d", e.FMin)
	}
}

func TestReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}

	// Refresh the file out-of-band, as an external LRU-Fit run would.
	c := stats.NewCatalog()
	if err := c.Put(entry("orders", "key", 777)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry("lineitem", "partkey", 650)); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	gen, err := st.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || st.Len() != 2 {
		t.Fatalf("after reload gen=%d len=%d", gen, st.Len())
	}
	e, err := st.Get("orders", "key")
	if err != nil {
		t.Fatal(err)
	}
	if e.FMin != 777 {
		t.Fatalf("reload did not swap entry: FMin = %d", e.FMin)
	}

	if _, err := NewStore().Reload(); !errors.Is(err, ErrNoPath) {
		t.Fatalf("Reload on in-memory store err = %v, want ErrNoPath", err)
	}
}

func TestReplaceAll(t *testing.T) {
	st := NewStore()
	if _, err := st.Put(entry("old", "gone", 500)); err != nil {
		t.Fatal(err)
	}
	c := stats.NewCatalog()
	if err := c.Put(entry("new", "a", 500)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(entry("new", "b", 600)); err != nil {
		t.Fatal(err)
	}
	gen, err := st.ReplaceAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || st.Len() != 2 {
		t.Fatalf("after ReplaceAll gen=%d len=%d", gen, st.Len())
	}
	if _, err := st.Get("old", "gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old entry survived ReplaceAll: %v", err)
	}
}

// TestConcurrentReadersAndWriter is the subsystem's race test: many reader
// goroutines hammer Get + Est-IO against the store while one writer installs
// fresh statistics and periodically reloads from disk. Run with -race.
func TestConcurrentReadersAndWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(entry("orders", "key", 500)); err != nil {
		t.Fatal(err)
	}

	const (
		readers      = 8
		writerRounds = 60
	)
	done := make(chan struct{})
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := st.Snapshot()
				e, err := snap.Get("orders", "key")
				if err != nil {
					t.Errorf("reader Get: %v", err)
					return
				}
				f, err := core.EstimateFetches(e, 50, 0.1, 1)
				if err != nil {
					t.Errorf("reader estimate: %v", err)
					return
				}
				if f < 0 {
					t.Errorf("estimate = %g", f)
					return
				}
			}
		}()
	}

	for i := 0; i < writerRounds; i++ {
		fmin := int64(400 + i)
		if _, err := st.Put(entry("orders", "key", fmin)); err != nil {
			t.Errorf("writer Put: %v", err)
			break
		}
		if _, err := st.Put(entry("lineitem", "partkey", fmin)); err != nil {
			t.Errorf("writer Put: %v", err)
			break
		}
		if i%10 == 9 {
			if _, err := st.Reload(); err != nil {
				t.Errorf("writer Reload: %v", err)
				break
			}
		}
	}
	close(done)
	wg.Wait()

	if g := st.Generation(); g < writerRounds {
		t.Fatalf("generation = %d after %d writer rounds", g, writerRounds)
	}
}
