module epfis

go 1.22
