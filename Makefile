GO ?= go

.PHONY: build test race bench fuzz serve vet all

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-test the concurrent subsystems (catalog store + estimation service).
race:
	$(GO) test -race ./internal/catalog/... ./internal/service/... ./cmd/epfis-serve/...

# Service throughput: single estimates vs 64-plan batches, 1 and 4 cores.
bench:
	$(GO) test -bench=ServiceEstimate -cpu 1,4 -run=NONE ./cmd/epfis-serve/

# Short fuzz pass over the catalog JSON format.
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzCatalogRoundTrip -fuzztime=30s ./internal/stats/

# Collect statistics for a demo index if needed, then serve it.
serve:
	@test -f catalog.json || $(GO) run ./cmd/epfis gen -out catalog.json -n 100000 -i 1000 -k 0.2
	$(GO) run ./cmd/epfis-serve -addr :8080 -catalog catalog.json
