GO ?= go

.PHONY: build test race chaos chaos-net cluster-check bench bench-json bench-serve bench-ingest bench-cluster bench-smoke fuzz obs-check serve vet all

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-test the concurrent subsystems (catalog store + estimation service,
# plus the mergeable incremental simulator the ingest worker feeds).
race:
	$(GO) test -race ./internal/catalog/... ./internal/cluster/... ./internal/lrusim/... ./internal/service/... ./cmd/epfis-serve/...

# Resilience drills under the race detector: fault injection on every catalog
# write path mid-traffic (including WAL append/fsync/checkpoint faults under
# concurrent ingest + readers), commit-abort and recovery invariants, overload
# shedding, breaker/degraded behaviour, plus recovery fuzz smokes for both the
# legacy rename store and the WAL log.
chaos:
	$(GO) test -race ./internal/faultfs/ ./internal/resilience/
	$(GO) test -race -run 'TestChaos|TestOverload|TestDeleted|TestHealthz|TestCommitAborts|TestFsync|TestOpenRecovers|TestReload|TestWAL' \
		./internal/catalog/ ./internal/service/
	$(GO) test -run=Fuzz -fuzz=FuzzOpenCatalogStore -fuzztime=20s ./internal/catalog/
	$(GO) test -run=Fuzz -fuzz=FuzzWALRecovery -fuzztime=20s ./internal/catalog/

# Network partition drills under the race detector: the deterministic fault
# injector itself, then the jepsen-lite convergence drill — partition a 3-node
# cluster while both sides take writes and ingest, heal, and require every
# store to converge to one content hash with bit-exact estimates — plus the
# hinted-handoff restart, epoch-guard, ingest-routing, and WAL ingest-journal
# crash-replay proofs.
chaos-net:
	$(GO) test -race ./internal/faultnet/
	$(GO) test -race -run 'TestClusterPartition|TestAsymmetricPartition|TestReplicatedDeleteEpochGuard|TestHandoffJournal|TestClusterIngestOwnership|TestIngestJournal' \
		./internal/service/
	$(GO) test -race -run 'TestWALIngestJournal' ./internal/catalog/

# Service throughput: single estimates vs 64-plan batches, 1 and 4 cores.
bench:
	$(GO) test -bench=ServiceEstimate -cpu 1,4 -run=NONE ./cmd/epfis-serve/

# Tracked perf baseline: pooled-simulator and Measure microbenchmarks, the
# warm-cache sweep, and full-suite wall-clock at -parallel 1/4, written as
# BENCH_experiments.json (see README "Benchmarks and the perf baseline").
bench-json:
	$(GO) run ./cmd/epfis-bench -out BENCH_experiments.json

# Serving-path baseline: handler-level single/cache-hit/cache-miss/batch64/
# parallel benchmarks written as BENCH_serve.json. Exits non-zero when
# allocs/op exceed the committed budgets (the CI alloc gate; see README
# "Performance").
bench-serve:
	$(GO) run ./cmd/epfis-bench -suite serve -out BENCH_serve.json

# Ingestion-path baseline: WAL group-commit vs legacy rename mutation
# throughput, Accum feed/merge cost, and POST /v1/ingest handler latency,
# written as BENCH_ingest.json. Exits non-zero when the WAL speedup falls
# under -min-wal-speedup (default 10x) or Feed exceeds its alloc budget.
bench-ingest:
	$(GO) run ./cmd/epfis-bench -suite ingest -out BENCH_ingest.json

# Cluster data-plane baseline: proxied-estimate allocs, quorum PUT latency
# with a faultnet-slowed straggler peer (the fast-ack gate), and delta
# anti-entropy bytes-on-wire vs the full snapshot, measured over an
# in-process multi-node cluster and written as BENCH_cluster.json. Exits
# non-zero when any budget is breached (see README "Cluster performance").
bench-cluster:
	$(GO) run ./cmd/epfis-bench -suite cluster -out BENCH_cluster.json

# One-iteration pass over the perf-relevant benchmarks, as run in CI.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/lrusim/ ./internal/workload/ ./internal/experiment/

# Cluster smoke: spawn a 3-node cluster (R=2) on loopback, install an index
# through one node, verify bit-exact estimates from all three (own vs proxy),
# verify the checksummed snapshot stream imports, then kill a node and verify
# the survivors keep serving. See README "Running a cluster".
cluster-check:
	$(GO) run ./cmd/epfis-clustercheck

# Observability smoke: spin up a live service instance and check /metrics in
# both negotiated formats (the Prometheus exposition is run through the obs
# format validator), /debug/traces span breakdowns, traceparent echo, and the
# /healthz build-info fields, all over real HTTP. Point it at a running
# instance instead with `go run ./cmd/epfis-obscheck -addr localhost:8080`.
obs-check:
	$(GO) run ./cmd/epfis-obscheck

# Short fuzz passes: catalog JSON format, and store recovery from corrupt
# catalog files (run one at a time; go fuzzing allows one -fuzz per package).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzCatalogRoundTrip -fuzztime=30s ./internal/stats/
	$(GO) test -run=Fuzz -fuzz=FuzzOpenCatalogStore -fuzztime=30s ./internal/catalog/

# Collect statistics for a demo index if needed, then serve it.
serve:
	@test -f catalog.json || $(GO) run ./cmd/epfis gen -out catalog.json -n 100000 -i 1000 -k 0.2
	$(GO) run ./cmd/epfis-serve -addr :8080 -catalog catalog.json
